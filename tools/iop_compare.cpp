// iop-compare: validate the estimation on a configuration the way the
// paper's Tables XIII/XIV do — characterize the application on a source
// configuration, estimate on the target via IOR phase replay, run the
// application on the target for ground truth, and report the relative
// errors per phase group.
//
//   iop-compare --app btio --class D --np 64 --config A --target C
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "configs/configfile.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  args.addOption("config", "source configuration (characterization)", "A");
  args.addOption("target", "target configuration: A | B | C | finisterrae",
                 "C");
  args.addOption("target-file",
                 "target cluster description file (overrides --target)");
  args.addOption("np", "number of MPI processes", "16");
  tools::addAppOptions(args);
  tools::addLogOption(args);
  try {
    args.parse(argc, argv);
    obs::Logger log(tools::toolLogLevel(args));
    if (args.helpRequested()) {
      std::printf("%s",
                  args.usage("iop-compare",
                             "Estimate vs measured I/O time on a target "
                             "configuration (the validation stage).")
                      .c_str());
      return 0;
    }
    const int np = static_cast<int>(args.getInt("np", 16));

    // Characterize.
    auto source =
        configs::makeConfig(tools::parseConfigId(args.get("config")));
    auto charRun = analysis::runAndTrace(
        source, args.get("app"), tools::makeAppMain(args, source), np);

    // Target builder + a probe instance for the mount and the app rerun.
    analysis::ConfigBuilder builder;
    if (args.has("target-file")) {
      const std::string path = args.get("target-file");
      builder = [path] { return configs::loadClusterConfig(path); };
    } else {
      const auto id = tools::parseConfigId(args.get("target"));
      builder = [id] { return configs::makeConfig(id); };
    }
    auto target = builder();
    const std::string mount = target.mount;
    std::printf("characterized %s (%d procs) on %s; validating on %s\n",
                args.get("app").c_str(), np, source.name.c_str(),
                target.name.c_str());

    analysis::Replayer replayer(builder, mount);
    auto estimate = analysis::estimateIoTime(charRun.model, replayer);

    auto measured = analysis::runAndTrace(
        target, args.get("app"), tools::makeAppMain(args, target), np);

    auto rows = analysis::compareEstimate(estimate, measured.model);
    util::Table table("Time_io(CH) vs Time_io(MD) on " + target.name);
    table.setHeader({"Phase", "Time_CH (s)", "Time_MD (s)", "error_rel"},
                    {util::Align::Left, util::Align::Right,
                     util::Align::Right, util::Align::Right});
    double worst = 0;
    for (const auto& row : rows) {
      char ch[32], md[32], err[16];
      std::snprintf(ch, sizeof ch, "%.2f", row.timeCH);
      std::snprintf(md, sizeof md, "%.2f", row.timeMD);
      std::snprintf(err, sizeof err, "%.1f%%", row.errorPct);
      table.addRow({row.label(), ch, md, err});
      worst = std::max(worst, row.errorPct);
    }
    std::printf("%s", table.render().c_str());
    std::printf("worst relative error: %.1f%% (%zu IOR runs)\n", worst,
                replayer.benchmarkRuns());
    log.info("tool", "complete");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-compare: %s\n", e.what());
    return 1;
  }
}
