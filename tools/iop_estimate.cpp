// iop-estimate: estimate an application's I/O time on a target
// configuration from its saved model, using IOR phase replay (eqs. 1-2) —
// the application itself never runs on the target.
//
//   iop-estimate --model btio.model --config finisterrae
//   iop-estimate --model mad.model --config B --multiop
//   iop-estimate --model btio.model --config B --archive trends/
#include <cstdio>

#include "analysis/blame.hpp"
#include "analysis/degraded.hpp"
#include "analysis/multiop.hpp"
#include "analysis/replay.hpp"
#include "analysis/synthesize.hpp"
#include "core/iomodel.hpp"
#include "fault/plan.hpp"
#include "mpi/runtime.hpp"
#include "obs/archive.hpp"
#include "obs/capture.hpp"
#include "obs/hub.hpp"
#include "toolkit.hpp"
#include "trace/tracer.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  args.addOption("model", "model file written by iop-model", "app.model");
  tools::addConfigOptions(args, "target configuration");
  args.addFlag("multiop",
               "replay multi-operation phases with the exact-cycle "
               "replayer instead of averaged IOR passes");
  args.addFlag("blame",
               "additionally run the model's synthetic replay on the "
               "target and print its critical-path blame table");
  args.addOption("fault-plan",
                 "fault plan file (docs/FAULTS.md); adds degraded-mode "
                 "Time_io across seeded fault replicas");
  args.addOption("fault-seeds",
                 "number of seeded fault replicas for --fault-plan", "3");
  args.addOption("archive",
                 "archive the per-family estimate as a capture into this "
                 "trend-archive directory (see iop-trend)");
  args.addOption("archive-label",
                 "commit / tag label recorded with --archive entries", "");
  tools::addObsOptions(args);
  try {
    args.parse(argc, argv);
    if (args.helpRequested()) {
      std::printf("%s",
                  args.usage("iop-estimate",
                             "Estimate I/O time on a target configuration "
                             "via phase replay (the evaluation stage).")
                      .c_str());
      return 0;
    }
    auto model = core::IOModel::load(args.get("model"));
    auto probe = tools::makeConfiguredCluster(args);
    const std::string mount = probe.mount;
    tools::ObsSession obsSession(args);
    const auto configured = tools::configuredBuilder(args);
    analysis::ConfigBuilder builder = [&obsSession, configured] {
      return obsSession.attachedBuild(configured);
    };
    analysis::Replayer replayer(builder, mount);
    auto estimate =
        args.flag("multiop")
            ? analysis::estimateIoTimeMultiOp(model, replayer, builder,
                                              mount)
            : analysis::estimateIoTime(model, replayer);

    util::Table table("Time_io(CH) of " + model.appName() + " (" +
                      std::to_string(model.np()) + " processes) on " +
                      probe.name);
    table.setHeader({"Phase", "weight", "BW_CH (MB/s)", "Time_CH (s)"},
                    {util::Align::Left, util::Align::Right,
                     util::Align::Right, util::Align::Right});
    for (const auto& row : estimate.familyRows()) {
      const std::string label =
          row.firstPhase == row.lastPhase
              ? "Phase " + std::to_string(row.firstPhase)
              : "Phase " + std::to_string(row.firstPhase) + "-" +
                    std::to_string(row.lastPhase);
      const double bw = row.timeCH > 0
                            ? static_cast<double>(row.weightBytes) /
                                  row.timeCH
                            : 0;
      char bwText[32], timeText[32];
      std::snprintf(bwText, sizeof bwText, "%.1f", util::toMiBs(bw));
      std::snprintf(timeText, sizeof timeText, "%.2f", row.timeCH);
      table.addRow({label, util::formatBytesApprox(row.weightBytes),
                    bwText, timeText});
    }
    std::printf("%s", table.render().c_str());
    std::printf("total estimated I/O time: %.2f s (%zu IOR runs)\n",
                estimate.totalTimeSec, replayer.benchmarkRuns());

    if (args.has("archive")) {
      // Archive the estimate as a capture: one phase per family row, with
      // Time_CH as the I/O time, so iop-trend tracks how the eq. 1-2
      // prediction for this (model, config) pair drifts across commits.
      obs::RunCapture cap;
      cap.app = model.appName();
      cap.np = model.np();
      cap.config = probe.name;
      cap.makespan = estimate.totalTimeSec;
      for (const auto& row : estimate.familyRows()) {
        obs::CapturePhase cp;
        cp.id = row.firstPhase;
        cp.familyId = row.firstPhase;
        cp.weightBytes = row.weightBytes;
        cp.ioSeconds = row.timeCH;
        cp.bandwidth = row.timeCH > 0 ? static_cast<double>(row.weightBytes) /
                                            row.timeCH
                                      : 0;
        cp.label = "family " + std::to_string(row.firstPhase) + "-" +
                   std::to_string(row.lastPhase);
        cap.phases.push_back(std::move(cp));
      }
      obs::Archive archive(args.get("archive"));
      const auto entry = archive.addCapture(cap, args.get("archive-label"));
      std::printf("archived estimate seq %llu (%s) into %s\n",
                  static_cast<unsigned long long>(entry.seq),
                  entry.hash.c_str(), args.get("archive").c_str());
    }

    if (args.has("fault-plan")) {
      // Degraded mode: replay the whole model (synthetic app, preserving
      // inter-phase ordering and absolute time) under the fault plan, once
      // per seed, on fresh un-instrumented clusters.
      const auto plan = fault::loadFaultPlan(args.get("fault-plan"));
      const int nSeeds =
          static_cast<int>(args.getInt("fault-seeds", 3));
      if (nSeeds < 1) {
        throw std::invalid_argument("--fault-seeds must be >= 1");
      }
      std::vector<std::uint64_t> seeds;
      for (int i = 0; i < nSeeds; ++i) {
        seeds.push_back(static_cast<std::uint64_t>(i + 1));
      }
      const auto degraded =
          analysis::estimateDegraded(model, configured, plan, seeds);

      util::Table dtable("degraded Time_io under " +
                         args.get("fault-plan") + " (" +
                         std::to_string(seeds.size()) + " replicas)");
      dtable.setHeader(
          {"Phase", "weight", "median T (s)", "median stall", "max stall"},
          {util::Align::Left, util::Align::Right, util::Align::Right,
           util::Align::Right, util::Align::Right});
      for (const auto& row : degraded.phases) {
        char t[32], st[32], mx[32];
        std::snprintf(t, sizeof t, "%.2f", row.medianTimeSec);
        std::snprintf(st, sizeof st, "%.3f", row.medianStallSec);
        std::snprintf(mx, sizeof mx, "%.3f", row.maxStallSec);
        dtable.addRow({"Phase " + std::to_string(row.phaseId),
                       util::formatBytesApprox(row.weightBytes), t, st, mx});
      }
      std::printf("\n%s", dtable.render().c_str());
      for (const auto& replica : degraded.replicas) {
        if (replica.ok) {
          std::printf("replica seed=%llu: Time_io %.2f s, %llu retries, "
                      "%llu failovers, %.3f s stalled\n",
                      static_cast<unsigned long long>(replica.seed),
                      replica.timeIo,
                      static_cast<unsigned long long>(replica.retries),
                      static_cast<unsigned long long>(replica.failovers),
                      replica.stallSeconds);
        } else {
          std::printf("replica seed=%llu: FAILED (%s)\n",
                      static_cast<unsigned long long>(replica.seed),
                      replica.error.c_str());
        }
      }
      if (degraded.allFailed()) {
        std::printf("degraded I/O time: all %zu replicas failed\n",
                    degraded.replicas.size());
      } else {
        std::printf("degraded I/O time: min %.2f / median %.2f / max %.2f s "
                    "over %zu of %zu replicas\n",
                    degraded.minTimeIo, degraded.medianTimeIo,
                    degraded.maxTimeIo, degraded.okReplicas,
                    degraded.replicas.size());
      }
    }
    if (args.flag("blame")) {
      // Simulate the whole model on the target (synthetic replay keeps
      // inter-phase ordering and cache state) with dependency edges on,
      // and decompose that run's critical path per phase.  BW_attr here
      // is directly comparable to the BW_CH column above.
      obs::Session blame;
      blame.log().setLevel(tools::toolLogLevel(args));
      auto cluster = configured();
      cluster.engine->setObs(blame.hub());
      trace::Tracer tracer(model.appName(), model.np());
      mpi::Runtime runtime(*cluster.topology,
                           cluster.runtimeOptions(model.np(), &tracer));
      const double makespan = runtime.runToCompletion(
          analysis::makeSyntheticApp(model, cluster.mount));
      auto replayed = core::extractModel(tracer.takeData(), {});
      std::printf("\nsynthetic replay on %s:\n%s", cluster.name.c_str(),
                  analysis::renderBlameReport(blame.edges(), makespan,
                                              replayed)
                      .c_str());
    }
    obsSession.finish();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-estimate: %s\n", e.what());
    return 1;
  }
}
