#!/bin/sh
# Local CI: build and test the three flavors we care about — an optimized
# Release build, AddressSanitizer, and UndefinedBehaviorSanitizer.
#
#   tools/ci.sh [jobs]
#
# Build trees live under build-ci/ (ignored by git).  Fails fast on the
# first failing build or test batch.
set -eu

jobs=${1:-$(nproc 2>/dev/null || echo 4)}
root=$(cd "$(dirname "$0")/.." && pwd)

run_flavor() {
    name=$1
    shift
    dir="$root/build-ci/$name"
    echo "=== [$name] configure + build ==="
    cmake -B "$dir" -S "$root" "$@"
    cmake --build "$dir" -j "$jobs"
    echo "=== [$name] ctest ==="
    (cd "$dir" && ctest --output-on-failure -j "$jobs")
}

run_flavor release -DCMAKE_BUILD_TYPE=Release -DIOP_SANITIZE=
# Leak checking is off for the ASan flavor: coroutine frames of daemon
# processes (flusher loops, blocked waiters) are deliberately abandoned in
# waiter lists at engine teardown — destroying them there could release
# tokens into already-destroyed resources.  ASan still catches
# use-after-free / out-of-bounds, which is what we want from this flavor.
export ASAN_OPTIONS=detect_leaks=0
run_flavor asan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DIOP_SANITIZE=address
unset ASAN_OPTIONS
run_flavor ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DIOP_SANITIZE=undefined

# ThreadSanitizer covers the one multithreaded subsystem: the sweep
# layer — the cell-evaluation executor (including the fault-injected
# degraded cells of SweepExecutor.FaultAxisEndToEndDeterministicAndCached
# and the cancel/resume path), the parallel app characterization at
# campaign resolve (CampaignResolve.ParallelCharacterizationMatchesSerial,
# with the shared thread-local FrameArena under concurrent engines), and
# the runtime-telemetry instruments hammered from every worker
# (RuntimeTelemetry.ConcurrentInstrumentUpdatesAreLossless, plus the
# journal/snapshotter threads of the byte-identity test).
# Building only its test keeps the flavor cheap; everything else in the
# tree is single-threaded by design.  The ASan/UBSan flavors above run the
# full suite, so the hostile-input trace corpus (TraceFileHostile.*) and
# the corrupt store-cell tests execute under both sanitizers.
tsan_dir="$root/build-ci/tsan"
echo "=== [tsan] configure + build sweep_test ==="
cmake -B "$tsan_dir" -S "$root" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DIOP_SANITIZE=thread
cmake --build "$tsan_dir" -j "$jobs" --target sweep_test
echo "=== [tsan] sweep_test ==="
"$tsan_dir/tests/sweep_test"

echo "=== all flavors green ==="
