// iop-fsck: one crash-recovery pass over everything this toolkit
// persists — campaign stores, shared stores, capture archives.
//
//   iop-fsck --store sweep-out/
//   iop-fsck --store sweep-out/ --campaign campaign.txt --dry-run
//   iop-fsck --shared-store cache/ --archive trends/
//
// Scans store cells and models, archive objects and MANIFEST, and run
// journals; classifies damage (torn files, checksum mismatches, orphaned
// temps, manifest/object divergence); repairs what recomputation can
// regenerate (quarantine + resume) and truncates torn append tails.
// --dry-run classifies without touching anything; findings and the exit
// code are the same either way.
//
// Exit codes: 0 everything clean, 1 damage found and repaired (or
// repairable), 2 at least one unrecoverable finding (lost archive
// payloads), 3 usage errors.
#include <algorithm>
#include <cstdio>

#include "sweep/campaign.hpp"
#include "sweep/fsck.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  args.addOption("store", "campaign store directory to check");
  args.addOption("shared-store", "shared store directory to check");
  args.addOption("archive", "capture archive directory to check");
  args.addOption("campaign",
                 "campaign file the --store should be bound to (detects "
                 "torn campaign.txt prefixes)");
  args.addFlag("dry-run", "classify and report only; repair nothing");
  args.addFlag("quick",
               "skip the deep pass (cell/capture parses, object hashes); "
               "checks only what would break a resume");
  try {
    args.parse(argc, argv);
    const std::string usage = args.usage(
        "iop-fsck [--store DIR] [--shared-store DIR] [--archive DIR]",
        "Check and repair crash damage in stores and archives.\n"
        "Exit codes: 0 clean, 1 repaired/repairable, 2 unrecoverable, "
        "3 usage.");
    if (args.helpRequested()) {
      std::printf("%s", usage.c_str());
      return 0;
    }
    if (!args.positional().empty()) {
      std::fprintf(stderr, "iop-fsck: unexpected argument '%s'\n%s",
                   args.positional()[0].c_str(), usage.c_str());
      return 3;
    }
    sweep::FsckOptions options;
    options.repair = !args.flag("dry-run");
    options.deep = !args.flag("quick");
    if (args.has("campaign")) {
      options.expectedCampaign =
          sweep::loadCampaign(args.get("campaign")).canonicalText();
    }

    int rc = -1;
    if (args.has("store")) {
      const auto report =
          sweep::fsckCampaignStore(args.get("store"), options);
      std::printf("%s", report.render("store " + args.get("store")).c_str());
      rc = std::max(rc, report.exitCode());
    }
    if (args.has("shared-store")) {
      sweep::FsckOptions shared = options;
      shared.expectedCampaign.clear();  // shared stores bind no campaign
      const auto report =
          sweep::fsckSharedStore(args.get("shared-store"), shared);
      std::printf("%s",
                  report.render("shared store " + args.get("shared-store"))
                      .c_str());
      rc = std::max(rc, report.exitCode());
    }
    if (args.has("archive")) {
      const auto report = sweep::fsckArchive(args.get("archive"), options);
      std::printf("%s",
                  report.render("archive " + args.get("archive")).c_str());
      rc = std::max(rc, report.exitCode());
    }
    if (rc < 0) {
      std::fprintf(stderr,
                   "iop-fsck: nothing to check (give --store, "
                   "--shared-store and/or --archive)\n%s",
                   usage.c_str());
      return 3;
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-fsck: %s\n", e.what());
    return 3;
  }
}
