// iop-diff: compare two run captures (iop-stats --capture-out) and report
// per-phase time/bandwidth regressions and histogram shape changes, or —
// with --bench — compare two BENCH_*.json documents (iop-bench/1).  Exits
// non-zero when regressions were found, so CI can gate on it:
//
//   iop-stats --app btio --class A --np 4 --capture-out base.cap
//   iop-stats --app btio --class A --np 4 --capture-out head.cap
//   iop-diff base.cap head.cap --threshold-pct 5
//   iop-diff --align=similarity old-model.cap new-model.cap
//   iop-diff --bench BENCH_core.base.json BENCH_core.json
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/benchdiff.hpp"
#include "obs/capture.hpp"
#include "obs/diff.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int runBenchDiff(const iop::util::Args& args, iop::obs::Logger& log) {
  using namespace iop;
  obs::BenchDiffOptions options;
  options.thresholdPct = args.getDouble("threshold-pct", 10.0);
  const auto before = obs::parseBenchJson(readFile(args.positional()[0]));
  const auto after = obs::parseBenchJson(readFile(args.positional()[1]));
  const auto result = obs::diffBenchResults(before, after, options);
  std::printf("%s", result.render().c_str());
  log.info("diff", "bench_complete",
           "\"findings\":" + std::to_string(result.findings.size()) +
               ",\"regressions\":" +
               std::to_string(result.regressions()));
  return result.regressions() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  args.addOption("threshold-pct",
                 "relative change (%) flagged on makespan and per-phase "
                 "time/bandwidth (capture mode, default 5) or per-result "
                 "ns/op and bytes/s (--bench, default 10)");
  args.addOption("hist-threshold",
                 "normalized L1 distance (0..2) flagged on histogram "
                 "bucket shapes",
                 "0.25");
  args.addOption("min-seconds",
                 "ignore absolute time deltas below this floor", "1e-9");
  args.addOption("align",
                 "phase matching: id (default) | similarity "
                 "(renumbering-tolerant, by label and weight)");
  args.addFlag("bench",
               "diff two BENCH_*.json files (iop-bench/1) instead of run "
               "captures");
  tools::addLogOption(args);
  try {
    args.parse(argc, argv);
    if (args.helpRequested() || args.positional().size() != 2) {
      std::printf("%s",
                  args.usage("iop-diff <before> <after>",
                             "Diff two run captures (or, with --bench, two "
                             "bench JSON files); non-zero exit when the "
                             "second run regressed.")
                      .c_str());
      return args.helpRequested() ? 0 : 2;
    }
    obs::Logger log(tools::toolLogLevel(args));
    if (args.flag("bench")) return runBenchDiff(args, log);

    const auto before = obs::RunCapture::load(args.positional()[0]);
    const auto after = obs::RunCapture::load(args.positional()[1]);
    if (before.app != after.app || before.np != after.np) {
      log.warn("diff", "identity_mismatch",
               "\"before\":\"" + obs::TraceRecorder::jsonEscape(
                                     before.app + "/" +
                                     std::to_string(before.np)) +
                   "\",\"after\":\"" +
                   obs::TraceRecorder::jsonEscape(
                       after.app + "/" + std::to_string(after.np)) +
                   "\"");
    }
    obs::DiffOptions options;
    options.thresholdPct = args.getDouble("threshold-pct", 5.0);
    options.histThreshold = args.getDouble("hist-threshold", 0.25);
    options.minSeconds = args.getDouble("min-seconds", 1e-9);
    options.align = obs::parseAlignMode(args.getOr("align", "id"));
    const auto result = obs::diffCaptures(before, after, options);
    std::printf("%s", result.render(before, after).c_str());
    log.info("diff", "complete",
             "\"findings\":" + std::to_string(result.findings.size()) +
                 ",\"regressions\":" +
                 std::to_string(result.regressions()));
    return result.regressions() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-diff: %s\n", e.what());
    return 2;
  }
}
