// iop-diff: compare two run captures (iop-stats --capture-out) and report
// per-phase time/bandwidth regressions and histogram shape changes.  Exits
// non-zero when regressions were found, so CI can gate on it:
//
//   iop-stats --app btio --class A --np 4 --capture-out base.cap
//   iop-stats --app btio --class A --np 4 --capture-out head.cap
//   iop-diff base.cap head.cap --threshold-pct 5
#include <cstdio>

#include "obs/capture.hpp"
#include "obs/diff.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  args.addOption("threshold-pct",
                 "relative change (%) flagged on makespan and per-phase "
                 "time/bandwidth",
                 "5");
  args.addOption("hist-threshold",
                 "normalized L1 distance (0..2) flagged on histogram "
                 "bucket shapes",
                 "0.25");
  args.addOption("min-seconds",
                 "ignore absolute time deltas below this floor", "1e-9");
  tools::addLogOption(args);
  try {
    args.parse(argc, argv);
    if (args.helpRequested() || args.positional().size() != 2) {
      std::printf("%s",
                  args.usage("iop-diff <before.cap> <after.cap>",
                             "Diff two run captures; non-zero exit when "
                             "the second run regressed.")
                      .c_str());
      return args.helpRequested() ? 0 : 2;
    }
    obs::Logger log(tools::toolLogLevel(args));
    const auto before = obs::RunCapture::load(args.positional()[0]);
    const auto after = obs::RunCapture::load(args.positional()[1]);
    if (before.app != after.app || before.np != after.np) {
      log.warn("diff", "identity_mismatch",
               "\"before\":\"" + obs::TraceRecorder::jsonEscape(
                                     before.app + "/" +
                                     std::to_string(before.np)) +
                   "\",\"after\":\"" +
                   obs::TraceRecorder::jsonEscape(
                       after.app + "/" + std::to_string(after.np)) +
                   "\"");
    }
    obs::DiffOptions options;
    options.thresholdPct = args.getDouble("threshold-pct", 5.0);
    options.histThreshold = args.getDouble("hist-threshold", 0.25);
    options.minSeconds = args.getDouble("min-seconds", 1e-9);
    const auto result = obs::diffCaptures(before, after, options);
    std::printf("%s", result.render(before, after).c_str());
    log.info("diff", "complete",
             "\"findings\":" + std::to_string(result.findings.size()) +
                 ",\"regressions\":" +
                 std::to_string(result.regressions()));
    return result.regressions() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-diff: %s\n", e.what());
    return 2;
  }
}
