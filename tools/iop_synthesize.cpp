// iop-synthesize: generate and run a synthetic benchmark from a saved
// model — the model-driven replica of the application's I/O, executable on
// any configuration (the paper's "benchmark to replicate the I/O" built
// out in full).
//
//   iop-synthesize --model btio.model --config B
//   iop-synthesize --model btio.model --config B --verify
#include <cstdio>

#include "analysis/runner.hpp"
#include "analysis/synthesize.hpp"
#include "core/compare.hpp"
#include "core/iomodel.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  args.addOption("model", "model file written by iop-model", "app.model");
  tools::addConfigOptions(args, "configuration to run on");
  args.addFlag("verify", "re-extract the synthetic run's model and check "
                         "it matches the input (round-trip fidelity)");
  tools::addLogOption(args);
  try {
    args.parse(argc, argv);
    obs::Logger log(tools::toolLogLevel(args));
    if (args.helpRequested()) {
      std::printf("%s",
                  args.usage("iop-synthesize",
                             "Run a model-driven synthetic benchmark on a "
                             "configuration.")
                      .c_str());
      return 0;
    }
    auto model = core::IOModel::load(args.get("model"));
    auto cluster = tools::makeConfiguredCluster(args);
    auto run = analysis::runAndTrace(
        cluster, model.appName() + "-synthetic",
        analysis::makeSyntheticApp(model, cluster.mount), model.np());
    double ioTime = 0;
    for (const auto& ph : run.model.phases()) {
      ioTime += ph.measuredIoTime();
    }
    std::printf("synthetic %s on %s: makespan %.2f s, I/O time %.2f s, "
                "%s moved\n",
                model.appName().c_str(), cluster.name.c_str(),
                run.makespanSeconds, ioTime,
                util::formatBytesApprox(run.model.totalWeightBytes())
                    .c_str());
    if (args.flag("verify")) {
      auto diff = core::compareModels(model, run.model);
      std::printf("round-trip fidelity: %s\n",
                  diff ? "OK" : "MISMATCH");
      for (const auto& d : diff.differences) {
        std::printf("  %s\n", d.c_str());
      }
      return diff ? 0 : 2;
    }
    log.info("tool", "complete");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-synthesize: %s\n", e.what());
    return 1;
  }
}
