# iop-diff smoke test, run as a CTest:
#   two same-seed captures must diff clean (exit 0); a run with degraded
#   disks must be flagged as a regression (exit 1).
# Inputs: -DSTATS=... -DDIFF=... -DWORKDIR=...
function(run_step)
  execute_process(COMMAND ${ARGV}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(STEP_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(MAKE_DIRECTORY ${WORKDIR})

set(base --app madbench2 --np 4 --kpix 16 --config A)
run_step(${STATS} ${base} --capture-out base.cap)
run_step(${STATS} ${base} --capture-out same.cap)

execute_process(COMMAND ${DIFF} base.cap same.cap
                WORKING_DIRECTORY ${WORKDIR}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "same-seed captures reported regressions (${rc}):\n"
                      "${out}\n${err}")
endif()
string(FIND "${out}" "0 regression(s)" found)
if(found EQUAL -1)
  message(FATAL_ERROR "same-seed diff output unexpected:\n${out}")
endif()

run_step(${STATS} ${base} --degrade-disks 4 --capture-out slow.cap)

execute_process(COMMAND ${DIFF} base.cap slow.cap
                WORKING_DIRECTORY ${WORKDIR}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "degraded run was not flagged:\n${out}")
endif()
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "iop-diff failed rather than flagged (${rc}):\n"
                      "${out}\n${err}")
endif()
string(FIND "${out}" "REGRESSION" found)
if(found EQUAL -1)
  message(FATAL_ERROR "degraded diff output missing REGRESSION:\n${out}")
endif()

message(STATUS "diff smoke test passed")
