#include "toolkit.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "apps/registry.hpp"
#include "obs/profiler.hpp"
#include "configs/configfile.hpp"
#include "util/units.hpp"

namespace iop::tools {

configs::ConfigId parseConfigId(const std::string& name) {
  return configs::parseConfigName(name);
}

void addConfigOptions(util::Args& args, const std::string& role) {
  args.addOption("config", role + ": A | B | C | finisterrae", "A");
  args.addOption("config-file",
                 role + ": cluster description file (overrides --config)");
}

configs::ClusterConfig makeConfiguredCluster(const util::Args& args) {
  if (args.has("config-file")) {
    return configs::loadClusterConfig(args.get("config-file"));
  }
  return configs::makeConfig(parseConfigId(args.get("config")));
}

std::function<configs::ClusterConfig()> configuredBuilder(
    const util::Args& args) {
  if (args.has("config-file")) {
    const std::string path = args.get("config-file");
    return [path] { return configs::loadClusterConfig(path); };
  }
  const auto id = parseConfigId(args.get("config"));
  return [id] { return configs::makeConfig(id); };
}

void addAppOptions(util::Args& args) {
  args.addOption("app",
                 "application: madbench2 | btio | roms | flash-io | example",
                 "btio");
  args.addOption("class", "btio: NPB class A|B|C|D", "C");
  args.addOption("subtype", "btio: full | simple", "full");
  args.addOption("kpix", "madbench2: map size in KPIX", "8");
  args.addOption("bins", "madbench2: number of component matrices", "8");
  args.addOption("gangs", "madbench2: gang count", "1");
  args.addOption("steps", "roms: timesteps", "60");
  args.addOption("unknowns", "flash-io: unknown-variable datasets", "24");
}

mpi::Runtime::RankMain makeAppMain(const util::Args& args,
                                   const configs::ClusterConfig& cluster) {
  const std::string app = args.get("app");
  apps::AppParams params;
  // Forward only the knobs the selected app accepts; the registry rejects
  // unknown keys, and every app option here has a default.
  if (app == "btio") {
    params["class"] = args.get("class");
    params["subtype"] = args.get("subtype");
  } else if (app == "madbench2") {
    params["kpix"] = args.get("kpix");
    params["bins"] = args.get("bins");
    params["gangs"] = args.get("gangs");
  } else if (app == "roms") {
    params["steps"] = args.get("steps");
  } else if (app == "flash-io") {
    params["unknowns"] = args.get("unknowns");
  }
  return apps::makeApp(app, cluster.mount, params);
}

void addLogOption(util::Args& args) {
  args.addOption("log-level",
                 "structured JSONL diagnostics on stderr: off | warn | "
                 "info | debug (default warn)");
}

obs::LogLevel toolLogLevel(const util::Args& args) {
  return obs::parseLogLevel(args.getOr("log-level", "warn"));
}

void addObsOptions(util::Args& args) {
  args.addOption("trace-out",
                 "write a Chrome/Perfetto trace-event JSON of the run");
  args.addOption("metrics-out",
                 "write simulation metrics as CSV (- = stdout)");
  addLogOption(args);
}

ObsSession::ObsSession(const util::Args& args) {
  log_.setLevel(toolLogLevel(args));
  const bool wantTrace = args.has("trace-out");
  const bool wantMetrics = args.has("metrics-out");
  // An explicit --log-level opts into engine-side logging (deadlock and
  // saturation warnings) even without any file export.
  if (!wantTrace && !wantMetrics && !args.has("log-level")) return;
  session_ = std::make_unique<obs::Session>();
  session_->hub()->log = &log_;
  if (wantTrace) {
    traceOut_ = args.get("trace-out");
    // Mirror the analysis pipeline's wall-clock scopes into the trace.
    obs::Profiler::global().attachTrace(&session_->recorder());
    profilerAttached_ = true;
  } else {
    session_->hub()->trace = nullptr;
  }
  if (wantMetrics) {
    metricsOut_ = args.get("metrics-out");
  } else {
    session_->hub()->metrics = nullptr;
  }
}

void ObsSession::attach(sim::Engine& engine) {
  if (session_ != nullptr) engine.setObs(session_->hub());
}

configs::ClusterConfig ObsSession::attachedBuild(
    const std::function<configs::ClusterConfig()>& build) {
  auto cluster = build();
  attach(*cluster.engine);
  return cluster;
}

ObsSession::~ObsSession() { detachProfiler(); }

void ObsSession::detachProfiler() {
  // The profiler singleton must never outlive-point at our recorder.
  if (profilerAttached_) {
    obs::Profiler::global().attachTrace(nullptr);
    profilerAttached_ = false;
  }
}

void ObsSession::finish() {
  if (session_ == nullptr) return;
  detachProfiler();
  if (!traceOut_.empty()) {
    session_->recorder().saveJson(traceOut_);
    log_.info("tool", "wrote_trace",
              "\"path\":\"" + obs::TraceRecorder::jsonEscape(traceOut_) +
                  "\",\"events\":" +
                  std::to_string(session_->recorder().eventCount()));
  }
  if (!metricsOut_.empty()) {
    if (metricsOut_ == "-") {
      std::printf("%s", session_->metrics().renderCsv().c_str());
    } else {
      session_->metrics().saveCsv(metricsOut_);
      log_.info("tool", "wrote_metrics",
                "\"path\":\"" + obs::TraceRecorder::jsonEscape(metricsOut_) +
                    "\",\"metrics\":" +
                    std::to_string(session_->metrics().size()));
    }
  }
}

}  // namespace iop::tools
