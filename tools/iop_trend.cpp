// iop-trend: longitudinal regression tracking over a capture archive —
// the across-commits counterpart of iop-diff's two-run comparison.
//
//   iop-trend archive add  --archive trends/ --capture run.cap --label abc123
//   iop-trend archive add  --archive trends/ --bench BENCH_engine.json
//                          --name engine --label abc123
//   iop-trend archive list --archive trends/
//   iop-trend archive gc   --archive trends/ --keep-last 30
//   iop-trend report       --archive trends/ [--metric makespan]
//   iop-trend report       --archive trends/ --html trend.html
//   iop-trend check        --archive trends/ [--mad-threshold 4]
//
// `check` is the CI gate: it exits 0 when no series regressed and 1 when
// any did, printing one line per regression naming the app, config, and
// metric (docs/OBSERVABILITY.md describes the median/MAD change-point
// rule).  Exit code 2 means usage or archive errors.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/archive.hpp"
#include "obs/trend.hpp"
#include "sweep/fsck.hpp"
#include "util/args.hpp"
#include "util/fsatomic.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace iop;

std::string readFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Quick crash-recovery preflight (iop-fsck's library check): truncate a
/// torn manifest tail, drop entries whose objects are gone, sweep dead
/// writers' temps — before the archive is read.  Quiet when clean.
void fsckPreflight(const std::string& root) {
  const auto report = sweep::fsckArchive(root, sweep::FsckOptions{});
  if (!report.clean()) {
    std::fprintf(stderr, "%s", report.render("preflight " + root).c_str());
  }
}

obs::TrendOptions trendOptions(const util::Args& args) {
  obs::TrendOptions options;
  options.madThreshold = args.getDouble("mad-threshold", 4.0);
  options.relFloorPct = args.getDouble("rel-floor-pct", 1.0);
  options.minHistory =
      static_cast<std::size_t>(args.getInt("min-history", 3));
  options.metricFilter = args.getOr("metric", "");
  if (options.madThreshold <= 0) {
    throw std::invalid_argument("--mad-threshold must be > 0");
  }
  return options;
}

int cmdArchive(const util::Args& args, const std::string& action) {
  fsckPreflight(args.get("archive"));
  obs::Archive archive(args.get("archive"));
  if (action == "add") {
    const bool haveCapture = args.has("capture");
    const bool haveBench = args.has("bench");
    if (haveCapture == haveBench) {
      throw std::invalid_argument(
          "archive add needs exactly one of --capture or --bench");
    }
    obs::ArchiveEntry entry;
    if (haveCapture) {
      // Any capture format goes in (load sniffs v1/v2); the archive
      // stores v2.
      entry = archive.addCapture(
          obs::RunCapture::load(args.get("capture")),
          args.getOr("label", ""));
    } else {
      if (!args.has("name")) {
        throw std::invalid_argument("--bench requires --name");
      }
      entry = archive.addBench(readFileText(args.get("bench")),
                               args.get("name"), args.getOr("label", ""));
    }
    std::printf("archived seq %llu: %s %s label=%s hash=%s (%llu bytes)\n",
                static_cast<unsigned long long>(entry.seq),
                entry.kind.c_str(), entry.seriesKey().c_str(),
                entry.label.c_str(), entry.hash.c_str(),
                static_cast<unsigned long long>(entry.bytes));
    return 0;
  }
  if (action == "list") {
    std::size_t badLines = 0;
    const auto entries = archive.list(&badLines);
    util::Table table("archive " + archive.root().string() + " (" +
                      std::to_string(entries.size()) + " entries)");
    table.setHeader({"seq", "kind", "series", "label", "hash", "bytes"},
                    {util::Align::Right, util::Align::Left,
                     util::Align::Left, util::Align::Left,
                     util::Align::Left, util::Align::Right});
    for (const auto& e : entries) {
      table.addRow({std::to_string(e.seq), e.kind, e.seriesKey(), e.label,
                    e.hash, util::formatBytesApprox(e.bytes)});
    }
    std::printf("%s", table.render().c_str());
    if (badLines > 0) {
      std::fprintf(stderr,
                   "iop-trend: skipped %zu torn/malformed manifest "
                   "line(s)\n",
                   badLines);
    }
    return 0;
  }
  if (action == "gc") {
    const auto keep =
        static_cast<std::size_t>(args.getInt("keep-last", 0));
    const auto result = archive.gc(keep);
    std::printf("gc: pruned %zu manifest entries, removed %zu object "
                "file(s)%s\n",
                result.prunedEntries, result.removedFiles,
                keep == 0 ? " (no --keep-last: objects only)" : "");
    return 0;
  }
  throw std::invalid_argument("unknown archive action '" + action +
                              "' (add|list|gc)");
}

int cmdReport(const util::Args& args) {
  fsckPreflight(args.get("archive"));
  obs::Archive archive(args.get("archive"));
  const auto report = obs::analyzeTrends(archive, trendOptions(args));
  if (args.has("html")) {
    const std::string path = args.get("html");
    if (path == "-") {
      std::printf("%s", report.renderHtml().c_str());
    } else {
      util::writeFileAtomically(path, report.renderHtml());
      std::printf("wrote HTML trend report (%zu series) to %s\n",
                  report.series.size(), path.c_str());
    }
  } else {
    std::printf("%s", report.renderText().c_str());
  }
  return 0;
}

int cmdCheck(const util::Args& args) {
  fsckPreflight(args.get("archive"));
  obs::Archive archive(args.get("archive"));
  const auto report = obs::analyzeTrends(archive, trendOptions(args));
  std::printf("%s", report.renderCheck().c_str());
  if (report.regressions() == 0) {
    std::printf("trend check: %zu series clean (threshold %.2f sigma)\n",
                report.series.size(), report.options.madThreshold);
    return 0;
  }
  std::fprintf(stderr, "iop-trend: %zu series regressed\n",
               report.regressions());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.addOption("archive", "trend archive directory", "trends");
  args.addOption("capture",
                 "capture file (v1 or v2) to add; stored as format v2");
  args.addOption("bench", "iop-bench/1 JSON snapshot to add");
  args.addOption("name", "snapshot name for --bench entries");
  args.addOption("label", "commit / tag label recorded with added entries",
                 "");
  args.addOption("keep-last",
                 "archive gc: keep only the newest N entries per series "
                 "(0 = keep all, drop unreferenced objects only)",
                 "0");
  args.addOption("mad-threshold",
                 "robust sigma units beyond which the newest point is a "
                 "change-point",
                 "4");
  args.addOption("rel-floor-pct",
                 "scale floor as %% of |median| (guards MAD = 0 "
                 "deterministic histories)",
                 "1");
  args.addOption("min-history",
                 "prior points required before a series may flag", "3");
  args.addOption("metric", "substring filter on series names");
  args.addOption("html",
                 "report: write a single-file HTML report here instead of "
                 "text ('-' for stdout)");
  try {
    args.parse(argc, argv);
    const auto& pos = args.positional();
    const std::string usage = args.usage(
        "iop-trend <archive add|list|gc | report | check> --archive DIR",
        "Longitudinal regression tracking over a capture archive.");
    if (args.helpRequested() || pos.empty()) {
      std::printf("%s", usage.c_str());
      return args.helpRequested() ? 0 : 2;
    }
    const std::string& command = pos[0];
    if (command == "archive") {
      if (pos.size() != 2) {
        std::fprintf(stderr,
                     "iop-trend: archive needs an action (add|list|gc)\n");
        return 2;
      }
      return cmdArchive(args, pos[1]);
    }
    if (pos.size() != 1) {
      std::fprintf(stderr, "iop-trend: unexpected argument '%s'\n%s",
                   pos[1].c_str(), usage.c_str());
      return 2;
    }
    if (command == "report") return cmdReport(args);
    if (command == "check") return cmdCheck(args);
    std::fprintf(stderr, "iop-trend: unknown command '%s'\n%s",
                 command.c_str(), usage.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-trend: %s\n", e.what());
    return 2;
  }
}
