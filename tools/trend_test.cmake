# iop-trend smoke test, run as a CTest:
#   * a v2 capture of a real run is <= 40% the size of its v1 encoding
#     and iop-diff sees the two encodings as identical;
#   * an archive of five clean runs passes `iop-trend check` (exit 0);
#   * adding a run with a >= 20% makespan regression makes `check` exit
#     nonzero and name the app, config and metric.
# Inputs: -DSTATS=... -DDIFF=... -DTREND=... -DWORKDIR=...
function(run_step)
  execute_process(COMMAND ${ARGV}
                  WORKING_DIRECTORY ${WORKDIR}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "step failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(STEP_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

set(base --app btio --np 4 --config A)

# --- capture v2 size and equivalence ------------------------------------
run_step(${STATS} ${base} --capture-out base.cap --capture-format v1)
run_step(${STATS} ${base} --capture-out base.capv2 --capture-format v2)
file(SIZE ${WORKDIR}/base.cap v1_size)
file(SIZE ${WORKDIR}/base.capv2 v2_size)
math(EXPR scaled "${v2_size} * 100")
math(EXPR limit "${v1_size} * 40")
if(scaled GREATER limit)
  message(FATAL_ERROR "capture v2 too large: ${v2_size} bytes vs "
                      "${v1_size} bytes v1 (must be <= 40%)")
endif()

execute_process(COMMAND ${DIFF} base.cap base.capv2
                WORKING_DIRECTORY ${WORKDIR}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "v1 vs v2 re-encoding reported regressions (${rc}):\n"
                      "${out}\n${err}")
endif()
string(FIND "${out}" "0 regression(s)" found)
if(found EQUAL -1)
  message(FATAL_ERROR "v1 vs v2 diff output unexpected:\n${out}")
endif()

# --- clean archive passes check -----------------------------------------
foreach(i RANGE 1 5)
  run_step(${STATS} ${base} --archive trends --archive-label run${i})
endforeach()
run_step(${TREND} check --archive trends)

# --- injected regression fails check, naming the series -----------------
run_step(${STATS} ${base} --degrade-disks 3 --archive trends
         --archive-label bad)
execute_process(COMMAND ${TREND} check --archive trends
                WORKING_DIRECTORY ${WORKDIR}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "degraded run was not flagged by trend check:\n${out}")
endif()
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "iop-trend check failed rather than flagged (${rc}):\n"
                      "${out}\n${err}")
endif()
foreach(needle "REGRESSION" "btio" "Configuration A" "makespan")
  string(FIND "${out}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "trend check output missing '${needle}':\n${out}")
  endif()
endforeach()

# --- HTML report renders ------------------------------------------------
run_step(${TREND} report --archive trends --html trend.html)
file(READ ${WORKDIR}/trend.html html)
string(FIND "${html}" "<svg" found)
if(found EQUAL -1)
  message(FATAL_ERROR "HTML report has no inline SVG sparkline")
endif()

message(STATUS "trend smoke test passed")
