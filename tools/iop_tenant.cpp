// iop-tenant: co-schedule N jobs from a tenant spec against one shared
// storage configuration and report per-job slowdown, fairness, and
// interference (docs/TENANT.md).
//
//   iop-tenant run    --spec jobs.tenant --config B --seed 7
//   iop-tenant run    --spec jobs.tenant --config B --capture-out caps/
//   iop-tenant run    --spec jobs.tenant --config B --archive trends/
//   iop-tenant report --spec jobs.tenant --config B
//
// `run` simulates the spec and prints the fairness report, optionally
// writing per-job captures (--capture-out DIR, one file per job), a
// Chrome/Perfetto trace with per-job rank tracks (--trace-out), and
// archive entries labeled "<label>#<jobid>" (--archive) so iop-trend
// tracks each tenant separately.  `report` simulates and prints only.
//
// Exit codes: 0 ok, 1 runtime/spec errors, 2 usage errors.
#include <cstdio>
#include <filesystem>
#include <string>

#include "analysis/replay.hpp"
#include "fault/plan.hpp"
#include "obs/archive.hpp"
#include "obs/capture.hpp"
#include "tenant/cosched.hpp"
#include "tenant/report.hpp"
#include "tenant/spec.hpp"
#include "toolkit.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace iop;
  util::Args args;
  args.addOption("spec", "tenant spec file (docs/TENANT.md)");
  tools::addConfigOptions(args, "shared target configuration");
  args.addOption("seed", "run seed (arrival streams; byte-reproducible)",
                 "1");
  args.addOption("fault-plan",
                 "fault plan file (docs/FAULTS.md) composed with the "
                 "tenant run: installed on the contended topology and on "
                 "every solo baseline");
  args.addOption("capture-out",
                 "directory for per-job run captures "
                 "(<dir>/<jobid>.capture)");
  args.addOption("capture-format", "capture format: v1 | v2", "v1");
  args.addOption("report-out", "also write the report text to this file");
  args.addOption("archive",
                 "archive each job's contended capture into this "
                 "trend-archive directory (see iop-trend)");
  args.addOption("archive-label",
                 "label recorded with --archive entries (job id is "
                 "appended as <label>#<jobid>)", "");
  tools::addObsOptions(args);
  try {
    args.parse(argc, argv);
    const auto& pos = args.positional();
    const std::string usage = args.usage(
        "iop-tenant <run|report> --spec FILE --config NAME",
        "Multi-tenant contention: N jobs sharing one storage system.");
    if (args.helpRequested() || pos.size() != 1 ||
        (pos[0] != "run" && pos[0] != "report")) {
      std::printf("%s", usage.c_str());
      return args.helpRequested() ? 0 : 2;
    }
    const bool reportOnly = pos[0] == "report";
    if (!args.has("spec")) {
      std::fprintf(stderr, "iop-tenant: --spec is required\n");
      return 2;
    }
    const auto spec = tenant::loadTenantSpec(args.get("spec"));
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    const auto format = obs::parseCaptureFormat(args.get("capture-format"));

    fault::FaultPlan plan;
    tenant::TenantRunOptions options;
    if (args.has("fault-plan")) {
      plan = fault::loadFaultPlan(args.get("fault-plan"));
      options.faultPlan = &plan;
    }

    tools::ObsSession obsSession(args);
    options.perJobTracks = obsSession.active();
    const auto configured = tools::configuredBuilder(args);
    analysis::ConfigBuilder builder = [&obsSession, configured] {
      return obsSession.attachedBuild(configured);
    };

    const auto result = tenant::runTenant(spec, builder, seed, options);
    const std::string report = tenant::renderTenantReport(result);
    std::printf("%s", report.c_str());

    if (args.has("report-out")) {
      std::FILE* file = std::fopen(args.get("report-out").c_str(), "wb");
      if (file == nullptr) {
        throw std::runtime_error("cannot open " + args.get("report-out"));
      }
      std::fputs(report.c_str(), file);
      std::fclose(file);
    }

    if (!reportOnly && args.has("capture-out")) {
      const std::filesystem::path dir = args.get("capture-out");
      std::filesystem::create_directories(dir);
      for (std::size_t j = 0; j < result.jobs.size(); ++j) {
        const auto cap = tenant::makeJobCapture(result, j);
        cap.save((dir / (result.jobs[j].id + ".capture")).string(),
                 format);
      }
      std::fprintf(stderr, "iop-tenant: wrote %zu capture(s) to %s\n",
                   result.jobs.size(), dir.string().c_str());
    }

    if (!reportOnly && args.has("archive")) {
      obs::Archive archive(args.get("archive"));
      for (std::size_t j = 0; j < result.jobs.size(); ++j) {
        const auto entry = archive.addCapture(
            tenant::makeJobCapture(result, j),
            args.get("archive-label") + "#" + result.jobs[j].id);
        std::printf("archived job %s seq %llu (%s)\n",
                    result.jobs[j].id.c_str(),
                    static_cast<unsigned long long>(entry.seq),
                    entry.hash.c_str());
      }
    }

    obsSession.finish();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "iop-tenant: %s\n", e.what());
    return 1;
  }
}
