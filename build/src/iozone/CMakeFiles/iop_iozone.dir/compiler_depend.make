# Empty compiler generated dependencies file for iop_iozone.
# This may be replaced when dependencies are built.
