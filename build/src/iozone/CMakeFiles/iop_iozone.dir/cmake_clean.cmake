file(REMOVE_RECURSE
  "CMakeFiles/iop_iozone.dir/iozone.cpp.o"
  "CMakeFiles/iop_iozone.dir/iozone.cpp.o.d"
  "libiop_iozone.a"
  "libiop_iozone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_iozone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
