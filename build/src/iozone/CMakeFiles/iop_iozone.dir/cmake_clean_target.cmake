file(REMOVE_RECURSE
  "libiop_iozone.a"
)
