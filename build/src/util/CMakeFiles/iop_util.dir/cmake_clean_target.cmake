file(REMOVE_RECURSE
  "libiop_util.a"
)
