file(REMOVE_RECURSE
  "CMakeFiles/iop_util.dir/args.cpp.o"
  "CMakeFiles/iop_util.dir/args.cpp.o.d"
  "CMakeFiles/iop_util.dir/intervals.cpp.o"
  "CMakeFiles/iop_util.dir/intervals.cpp.o.d"
  "CMakeFiles/iop_util.dir/rng.cpp.o"
  "CMakeFiles/iop_util.dir/rng.cpp.o.d"
  "CMakeFiles/iop_util.dir/table.cpp.o"
  "CMakeFiles/iop_util.dir/table.cpp.o.d"
  "CMakeFiles/iop_util.dir/text.cpp.o"
  "CMakeFiles/iop_util.dir/text.cpp.o.d"
  "CMakeFiles/iop_util.dir/units.cpp.o"
  "CMakeFiles/iop_util.dir/units.cpp.o.d"
  "libiop_util.a"
  "libiop_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
