# Empty dependencies file for iop_util.
# This may be replaced when dependencies are built.
