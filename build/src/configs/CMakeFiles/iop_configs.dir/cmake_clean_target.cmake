file(REMOVE_RECURSE
  "libiop_configs.a"
)
