# Empty dependencies file for iop_configs.
# This may be replaced when dependencies are built.
