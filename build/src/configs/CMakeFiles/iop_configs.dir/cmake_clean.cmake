file(REMOVE_RECURSE
  "CMakeFiles/iop_configs.dir/configfile.cpp.o"
  "CMakeFiles/iop_configs.dir/configfile.cpp.o.d"
  "CMakeFiles/iop_configs.dir/configs.cpp.o"
  "CMakeFiles/iop_configs.dir/configs.cpp.o.d"
  "libiop_configs.a"
  "libiop_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
