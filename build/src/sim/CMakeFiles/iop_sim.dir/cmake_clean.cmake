file(REMOVE_RECURSE
  "CMakeFiles/iop_sim.dir/engine.cpp.o"
  "CMakeFiles/iop_sim.dir/engine.cpp.o.d"
  "CMakeFiles/iop_sim.dir/sync.cpp.o"
  "CMakeFiles/iop_sim.dir/sync.cpp.o.d"
  "libiop_sim.a"
  "libiop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
