# Empty compiler generated dependencies file for iop_sim.
# This may be replaced when dependencies are built.
