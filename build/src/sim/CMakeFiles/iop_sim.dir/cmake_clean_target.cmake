file(REMOVE_RECURSE
  "libiop_sim.a"
)
