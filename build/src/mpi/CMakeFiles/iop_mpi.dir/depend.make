# Empty dependencies file for iop_mpi.
# This may be replaced when dependencies are built.
