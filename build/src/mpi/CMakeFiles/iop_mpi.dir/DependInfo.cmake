
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/comm.cpp" "src/mpi/CMakeFiles/iop_mpi.dir/comm.cpp.o" "gcc" "src/mpi/CMakeFiles/iop_mpi.dir/comm.cpp.o.d"
  "/root/repo/src/mpi/file.cpp" "src/mpi/CMakeFiles/iop_mpi.dir/file.cpp.o" "gcc" "src/mpi/CMakeFiles/iop_mpi.dir/file.cpp.o.d"
  "/root/repo/src/mpi/rank.cpp" "src/mpi/CMakeFiles/iop_mpi.dir/rank.cpp.o" "gcc" "src/mpi/CMakeFiles/iop_mpi.dir/rank.cpp.o.d"
  "/root/repo/src/mpi/runtime.cpp" "src/mpi/CMakeFiles/iop_mpi.dir/runtime.cpp.o" "gcc" "src/mpi/CMakeFiles/iop_mpi.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/iop_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
