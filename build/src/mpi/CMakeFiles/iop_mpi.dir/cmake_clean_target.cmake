file(REMOVE_RECURSE
  "libiop_mpi.a"
)
