file(REMOVE_RECURSE
  "CMakeFiles/iop_mpi.dir/comm.cpp.o"
  "CMakeFiles/iop_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/iop_mpi.dir/file.cpp.o"
  "CMakeFiles/iop_mpi.dir/file.cpp.o.d"
  "CMakeFiles/iop_mpi.dir/rank.cpp.o"
  "CMakeFiles/iop_mpi.dir/rank.cpp.o.d"
  "CMakeFiles/iop_mpi.dir/runtime.cpp.o"
  "CMakeFiles/iop_mpi.dir/runtime.cpp.o.d"
  "libiop_mpi.a"
  "libiop_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
