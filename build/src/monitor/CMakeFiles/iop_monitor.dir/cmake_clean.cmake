file(REMOVE_RECURSE
  "CMakeFiles/iop_monitor.dir/monitor.cpp.o"
  "CMakeFiles/iop_monitor.dir/monitor.cpp.o.d"
  "libiop_monitor.a"
  "libiop_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
