file(REMOVE_RECURSE
  "libiop_monitor.a"
)
