# Empty compiler generated dependencies file for iop_monitor.
# This may be replaced when dependencies are built.
