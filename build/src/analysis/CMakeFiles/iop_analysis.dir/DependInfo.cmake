
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/evaluate.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/evaluate.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/evaluate.cpp.o.d"
  "/root/repo/src/analysis/multiop.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/multiop.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/multiop.cpp.o.d"
  "/root/repo/src/analysis/peaks.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/peaks.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/peaks.cpp.o.d"
  "/root/repo/src/analysis/planner.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/planner.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/planner.cpp.o.d"
  "/root/repo/src/analysis/replay.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/replay.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/replay.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/runner.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/runner.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/runner.cpp.o.d"
  "/root/repo/src/analysis/synthesize.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/synthesize.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/synthesize.cpp.o.d"
  "/root/repo/src/analysis/trace_replay.cpp" "src/analysis/CMakeFiles/iop_analysis.dir/trace_replay.cpp.o" "gcc" "src/analysis/CMakeFiles/iop_analysis.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/configs/CMakeFiles/iop_configs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ior/CMakeFiles/iop_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/iozone/CMakeFiles/iop_iozone.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iop_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/iop_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iop_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
