# Empty dependencies file for iop_analysis.
# This may be replaced when dependencies are built.
