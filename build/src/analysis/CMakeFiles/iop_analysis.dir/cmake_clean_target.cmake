file(REMOVE_RECURSE
  "libiop_analysis.a"
)
