file(REMOVE_RECURSE
  "CMakeFiles/iop_analysis.dir/evaluate.cpp.o"
  "CMakeFiles/iop_analysis.dir/evaluate.cpp.o.d"
  "CMakeFiles/iop_analysis.dir/multiop.cpp.o"
  "CMakeFiles/iop_analysis.dir/multiop.cpp.o.d"
  "CMakeFiles/iop_analysis.dir/peaks.cpp.o"
  "CMakeFiles/iop_analysis.dir/peaks.cpp.o.d"
  "CMakeFiles/iop_analysis.dir/planner.cpp.o"
  "CMakeFiles/iop_analysis.dir/planner.cpp.o.d"
  "CMakeFiles/iop_analysis.dir/replay.cpp.o"
  "CMakeFiles/iop_analysis.dir/replay.cpp.o.d"
  "CMakeFiles/iop_analysis.dir/report.cpp.o"
  "CMakeFiles/iop_analysis.dir/report.cpp.o.d"
  "CMakeFiles/iop_analysis.dir/runner.cpp.o"
  "CMakeFiles/iop_analysis.dir/runner.cpp.o.d"
  "CMakeFiles/iop_analysis.dir/synthesize.cpp.o"
  "CMakeFiles/iop_analysis.dir/synthesize.cpp.o.d"
  "CMakeFiles/iop_analysis.dir/trace_replay.cpp.o"
  "CMakeFiles/iop_analysis.dir/trace_replay.cpp.o.d"
  "libiop_analysis.a"
  "libiop_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
