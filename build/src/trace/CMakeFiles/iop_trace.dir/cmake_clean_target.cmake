file(REMOVE_RECURSE
  "libiop_trace.a"
)
