
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/summary.cpp" "src/trace/CMakeFiles/iop_trace.dir/summary.cpp.o" "gcc" "src/trace/CMakeFiles/iop_trace.dir/summary.cpp.o.d"
  "/root/repo/src/trace/tracefile.cpp" "src/trace/CMakeFiles/iop_trace.dir/tracefile.cpp.o" "gcc" "src/trace/CMakeFiles/iop_trace.dir/tracefile.cpp.o.d"
  "/root/repo/src/trace/tracer.cpp" "src/trace/CMakeFiles/iop_trace.dir/tracer.cpp.o" "gcc" "src/trace/CMakeFiles/iop_trace.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/iop_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iop_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iop_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iop_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
