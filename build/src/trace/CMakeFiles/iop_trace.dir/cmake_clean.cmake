file(REMOVE_RECURSE
  "CMakeFiles/iop_trace.dir/summary.cpp.o"
  "CMakeFiles/iop_trace.dir/summary.cpp.o.d"
  "CMakeFiles/iop_trace.dir/tracefile.cpp.o"
  "CMakeFiles/iop_trace.dir/tracefile.cpp.o.d"
  "CMakeFiles/iop_trace.dir/tracer.cpp.o"
  "CMakeFiles/iop_trace.dir/tracer.cpp.o.d"
  "libiop_trace.a"
  "libiop_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
