# Empty compiler generated dependencies file for iop_trace.
# This may be replaced when dependencies are built.
