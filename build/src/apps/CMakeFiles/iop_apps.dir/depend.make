# Empty dependencies file for iop_apps.
# This may be replaced when dependencies are built.
