
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/btio.cpp" "src/apps/CMakeFiles/iop_apps.dir/btio.cpp.o" "gcc" "src/apps/CMakeFiles/iop_apps.dir/btio.cpp.o.d"
  "/root/repo/src/apps/flash_io.cpp" "src/apps/CMakeFiles/iop_apps.dir/flash_io.cpp.o" "gcc" "src/apps/CMakeFiles/iop_apps.dir/flash_io.cpp.o.d"
  "/root/repo/src/apps/madbench.cpp" "src/apps/CMakeFiles/iop_apps.dir/madbench.cpp.o" "gcc" "src/apps/CMakeFiles/iop_apps.dir/madbench.cpp.o.d"
  "/root/repo/src/apps/roms.cpp" "src/apps/CMakeFiles/iop_apps.dir/roms.cpp.o" "gcc" "src/apps/CMakeFiles/iop_apps.dir/roms.cpp.o.d"
  "/root/repo/src/apps/strided_example.cpp" "src/apps/CMakeFiles/iop_apps.dir/strided_example.cpp.o" "gcc" "src/apps/CMakeFiles/iop_apps.dir/strided_example.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hdf5/CMakeFiles/iop_hdf5.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/iop_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iop_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
