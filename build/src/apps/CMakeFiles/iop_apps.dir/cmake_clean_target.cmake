file(REMOVE_RECURSE
  "libiop_apps.a"
)
