file(REMOVE_RECURSE
  "CMakeFiles/iop_apps.dir/btio.cpp.o"
  "CMakeFiles/iop_apps.dir/btio.cpp.o.d"
  "CMakeFiles/iop_apps.dir/flash_io.cpp.o"
  "CMakeFiles/iop_apps.dir/flash_io.cpp.o.d"
  "CMakeFiles/iop_apps.dir/madbench.cpp.o"
  "CMakeFiles/iop_apps.dir/madbench.cpp.o.d"
  "CMakeFiles/iop_apps.dir/roms.cpp.o"
  "CMakeFiles/iop_apps.dir/roms.cpp.o.d"
  "CMakeFiles/iop_apps.dir/strided_example.cpp.o"
  "CMakeFiles/iop_apps.dir/strided_example.cpp.o.d"
  "libiop_apps.a"
  "libiop_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
