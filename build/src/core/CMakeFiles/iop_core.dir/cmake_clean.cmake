file(REMOVE_RECURSE
  "CMakeFiles/iop_core.dir/compare.cpp.o"
  "CMakeFiles/iop_core.dir/compare.cpp.o.d"
  "CMakeFiles/iop_core.dir/iomodel.cpp.o"
  "CMakeFiles/iop_core.dir/iomodel.cpp.o.d"
  "CMakeFiles/iop_core.dir/lap.cpp.o"
  "CMakeFiles/iop_core.dir/lap.cpp.o.d"
  "CMakeFiles/iop_core.dir/offsetfn.cpp.o"
  "CMakeFiles/iop_core.dir/offsetfn.cpp.o.d"
  "CMakeFiles/iop_core.dir/phase.cpp.o"
  "CMakeFiles/iop_core.dir/phase.cpp.o.d"
  "libiop_core.a"
  "libiop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
