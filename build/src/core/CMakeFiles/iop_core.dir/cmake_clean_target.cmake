file(REMOVE_RECURSE
  "libiop_core.a"
)
