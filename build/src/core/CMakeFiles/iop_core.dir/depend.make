# Empty dependencies file for iop_core.
# This may be replaced when dependencies are built.
