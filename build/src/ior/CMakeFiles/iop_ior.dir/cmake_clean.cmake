file(REMOVE_RECURSE
  "CMakeFiles/iop_ior.dir/ior.cpp.o"
  "CMakeFiles/iop_ior.dir/ior.cpp.o.d"
  "libiop_ior.a"
  "libiop_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
