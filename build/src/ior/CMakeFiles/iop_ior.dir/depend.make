# Empty dependencies file for iop_ior.
# This may be replaced when dependencies are built.
