file(REMOVE_RECURSE
  "libiop_ior.a"
)
