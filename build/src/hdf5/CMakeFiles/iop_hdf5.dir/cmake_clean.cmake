file(REMOVE_RECURSE
  "CMakeFiles/iop_hdf5.dir/h5.cpp.o"
  "CMakeFiles/iop_hdf5.dir/h5.cpp.o.d"
  "libiop_hdf5.a"
  "libiop_hdf5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_hdf5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
