# Empty dependencies file for iop_hdf5.
# This may be replaced when dependencies are built.
