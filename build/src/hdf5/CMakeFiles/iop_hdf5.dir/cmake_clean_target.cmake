file(REMOVE_RECURSE
  "libiop_hdf5.a"
)
