file(REMOVE_RECURSE
  "CMakeFiles/iop_storage.dir/blockdev.cpp.o"
  "CMakeFiles/iop_storage.dir/blockdev.cpp.o.d"
  "CMakeFiles/iop_storage.dir/cache.cpp.o"
  "CMakeFiles/iop_storage.dir/cache.cpp.o.d"
  "CMakeFiles/iop_storage.dir/disk.cpp.o"
  "CMakeFiles/iop_storage.dir/disk.cpp.o.d"
  "CMakeFiles/iop_storage.dir/filesystem.cpp.o"
  "CMakeFiles/iop_storage.dir/filesystem.cpp.o.d"
  "CMakeFiles/iop_storage.dir/network.cpp.o"
  "CMakeFiles/iop_storage.dir/network.cpp.o.d"
  "CMakeFiles/iop_storage.dir/server.cpp.o"
  "CMakeFiles/iop_storage.dir/server.cpp.o.d"
  "CMakeFiles/iop_storage.dir/ssd.cpp.o"
  "CMakeFiles/iop_storage.dir/ssd.cpp.o.d"
  "CMakeFiles/iop_storage.dir/topology.cpp.o"
  "CMakeFiles/iop_storage.dir/topology.cpp.o.d"
  "libiop_storage.a"
  "libiop_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
