
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/blockdev.cpp" "src/storage/CMakeFiles/iop_storage.dir/blockdev.cpp.o" "gcc" "src/storage/CMakeFiles/iop_storage.dir/blockdev.cpp.o.d"
  "/root/repo/src/storage/cache.cpp" "src/storage/CMakeFiles/iop_storage.dir/cache.cpp.o" "gcc" "src/storage/CMakeFiles/iop_storage.dir/cache.cpp.o.d"
  "/root/repo/src/storage/disk.cpp" "src/storage/CMakeFiles/iop_storage.dir/disk.cpp.o" "gcc" "src/storage/CMakeFiles/iop_storage.dir/disk.cpp.o.d"
  "/root/repo/src/storage/filesystem.cpp" "src/storage/CMakeFiles/iop_storage.dir/filesystem.cpp.o" "gcc" "src/storage/CMakeFiles/iop_storage.dir/filesystem.cpp.o.d"
  "/root/repo/src/storage/network.cpp" "src/storage/CMakeFiles/iop_storage.dir/network.cpp.o" "gcc" "src/storage/CMakeFiles/iop_storage.dir/network.cpp.o.d"
  "/root/repo/src/storage/server.cpp" "src/storage/CMakeFiles/iop_storage.dir/server.cpp.o" "gcc" "src/storage/CMakeFiles/iop_storage.dir/server.cpp.o.d"
  "/root/repo/src/storage/ssd.cpp" "src/storage/CMakeFiles/iop_storage.dir/ssd.cpp.o" "gcc" "src/storage/CMakeFiles/iop_storage.dir/ssd.cpp.o.d"
  "/root/repo/src/storage/topology.cpp" "src/storage/CMakeFiles/iop_storage.dir/topology.cpp.o" "gcc" "src/storage/CMakeFiles/iop_storage.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/iop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
