file(REMOVE_RECURSE
  "libiop_storage.a"
)
