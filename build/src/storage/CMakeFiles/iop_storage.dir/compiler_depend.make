# Empty compiler generated dependencies file for iop_storage.
# This may be replaced when dependencies are built.
