# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_pipeline "/usr/bin/cmake" "-DTRACE=/root/repo/build/tools/iop-trace" "-DMODEL=/root/repo/build/tools/iop-model" "-DESTIMATE=/root/repo/build/tools/iop-estimate" "-DSYNTH=/root/repo/build/tools/iop-synthesize" "-DWORKDIR=/root/repo/build/pipeline_smoke" "-P" "/root/repo/tools/pipeline_test.cmake")
set_tests_properties(tools_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
