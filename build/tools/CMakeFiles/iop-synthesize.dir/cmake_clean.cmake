file(REMOVE_RECURSE
  "CMakeFiles/iop-synthesize.dir/iop_synthesize.cpp.o"
  "CMakeFiles/iop-synthesize.dir/iop_synthesize.cpp.o.d"
  "iop-synthesize"
  "iop-synthesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop-synthesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
