# Empty compiler generated dependencies file for iop-synthesize.
# This may be replaced when dependencies are built.
