file(REMOVE_RECURSE
  "CMakeFiles/iop_toolkit.dir/toolkit.cpp.o"
  "CMakeFiles/iop_toolkit.dir/toolkit.cpp.o.d"
  "libiop_toolkit.a"
  "libiop_toolkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop_toolkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
