file(REMOVE_RECURSE
  "libiop_toolkit.a"
)
