# Empty dependencies file for iop_toolkit.
# This may be replaced when dependencies are built.
