# Empty compiler generated dependencies file for iop-report.
# This may be replaced when dependencies are built.
