file(REMOVE_RECURSE
  "CMakeFiles/iop-report.dir/iop_report.cpp.o"
  "CMakeFiles/iop-report.dir/iop_report.cpp.o.d"
  "iop-report"
  "iop-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
