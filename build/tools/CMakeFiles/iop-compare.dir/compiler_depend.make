# Empty compiler generated dependencies file for iop-compare.
# This may be replaced when dependencies are built.
