file(REMOVE_RECURSE
  "CMakeFiles/iop-compare.dir/iop_compare.cpp.o"
  "CMakeFiles/iop-compare.dir/iop_compare.cpp.o.d"
  "iop-compare"
  "iop-compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop-compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
