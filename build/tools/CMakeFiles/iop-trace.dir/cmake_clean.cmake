file(REMOVE_RECURSE
  "CMakeFiles/iop-trace.dir/iop_trace.cpp.o"
  "CMakeFiles/iop-trace.dir/iop_trace.cpp.o.d"
  "iop-trace"
  "iop-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
