# Empty compiler generated dependencies file for iop-trace.
# This may be replaced when dependencies are built.
