file(REMOVE_RECURSE
  "CMakeFiles/iop-estimate.dir/iop_estimate.cpp.o"
  "CMakeFiles/iop-estimate.dir/iop_estimate.cpp.o.d"
  "iop-estimate"
  "iop-estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop-estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
