# Empty dependencies file for iop-estimate.
# This may be replaced when dependencies are built.
