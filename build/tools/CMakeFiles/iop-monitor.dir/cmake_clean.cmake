file(REMOVE_RECURSE
  "CMakeFiles/iop-monitor.dir/iop_monitor.cpp.o"
  "CMakeFiles/iop-monitor.dir/iop_monitor.cpp.o.d"
  "iop-monitor"
  "iop-monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop-monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
