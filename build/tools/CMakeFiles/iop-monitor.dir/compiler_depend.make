# Empty compiler generated dependencies file for iop-monitor.
# This may be replaced when dependencies are built.
