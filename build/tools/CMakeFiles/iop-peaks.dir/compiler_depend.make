# Empty compiler generated dependencies file for iop-peaks.
# This may be replaced when dependencies are built.
