file(REMOVE_RECURSE
  "CMakeFiles/iop-peaks.dir/iop_peaks.cpp.o"
  "CMakeFiles/iop-peaks.dir/iop_peaks.cpp.o.d"
  "iop-peaks"
  "iop-peaks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop-peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
