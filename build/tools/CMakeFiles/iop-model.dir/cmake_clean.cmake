file(REMOVE_RECURSE
  "CMakeFiles/iop-model.dir/iop_model.cpp.o"
  "CMakeFiles/iop-model.dir/iop_model.cpp.o.d"
  "iop-model"
  "iop-model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iop-model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
