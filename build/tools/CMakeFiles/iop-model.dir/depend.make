# Empty dependencies file for iop-model.
# This may be replaced when dependencies are built.
