# Empty compiler generated dependencies file for ior_test.
# This may be replaced when dependencies are built.
