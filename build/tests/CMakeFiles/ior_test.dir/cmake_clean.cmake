file(REMOVE_RECURSE
  "CMakeFiles/ior_test.dir/ior_test.cpp.o"
  "CMakeFiles/ior_test.dir/ior_test.cpp.o.d"
  "ior_test"
  "ior_test.pdb"
  "ior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
