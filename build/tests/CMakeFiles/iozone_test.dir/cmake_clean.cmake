file(REMOVE_RECURSE
  "CMakeFiles/iozone_test.dir/iozone_test.cpp.o"
  "CMakeFiles/iozone_test.dir/iozone_test.cpp.o.d"
  "iozone_test"
  "iozone_test.pdb"
  "iozone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iozone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
