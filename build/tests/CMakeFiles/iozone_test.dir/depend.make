# Empty dependencies file for iozone_test.
# This may be replaced when dependencies are built.
