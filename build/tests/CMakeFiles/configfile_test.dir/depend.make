# Empty dependencies file for configfile_test.
# This may be replaced when dependencies are built.
