file(REMOVE_RECURSE
  "CMakeFiles/configfile_test.dir/configfile_test.cpp.o"
  "CMakeFiles/configfile_test.dir/configfile_test.cpp.o.d"
  "configfile_test"
  "configfile_test.pdb"
  "configfile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configfile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
