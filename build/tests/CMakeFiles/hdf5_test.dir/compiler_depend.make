# Empty compiler generated dependencies file for hdf5_test.
# This may be replaced when dependencies are built.
