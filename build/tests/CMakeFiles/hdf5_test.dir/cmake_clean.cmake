file(REMOVE_RECURSE
  "CMakeFiles/hdf5_test.dir/hdf5_test.cpp.o"
  "CMakeFiles/hdf5_test.dir/hdf5_test.cpp.o.d"
  "hdf5_test"
  "hdf5_test.pdb"
  "hdf5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdf5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
