file(REMOVE_RECURSE
  "CMakeFiles/configs_test.dir/configs_test.cpp.o"
  "CMakeFiles/configs_test.dir/configs_test.cpp.o.d"
  "configs_test"
  "configs_test.pdb"
  "configs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
