# Empty compiler generated dependencies file for configs_test.
# This may be replaced when dependencies are built.
