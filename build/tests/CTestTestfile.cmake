# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/intervals_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/configs_test[1]_include.cmake")
include("/root/repo/build/tests/ior_test[1]_include.cmake")
include("/root/repo/build/tests/iozone_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/args_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/hdf5_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/configfile_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
