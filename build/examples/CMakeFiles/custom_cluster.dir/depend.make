# Empty dependencies file for custom_cluster.
# This may be replaced when dependencies are built.
