file(REMOVE_RECURSE
  "CMakeFiles/custom_cluster.dir/custom_cluster.cpp.o"
  "CMakeFiles/custom_cluster.dir/custom_cluster.cpp.o.d"
  "custom_cluster"
  "custom_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
