# Empty dependencies file for hdf5_checkpoint.
# This may be replaced when dependencies are built.
