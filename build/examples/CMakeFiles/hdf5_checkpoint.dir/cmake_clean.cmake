file(REMOVE_RECURSE
  "CMakeFiles/hdf5_checkpoint.dir/hdf5_checkpoint.cpp.o"
  "CMakeFiles/hdf5_checkpoint.dir/hdf5_checkpoint.cpp.o.d"
  "hdf5_checkpoint"
  "hdf5_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdf5_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
