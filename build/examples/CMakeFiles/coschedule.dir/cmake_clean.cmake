file(REMOVE_RECURSE
  "CMakeFiles/coschedule.dir/coschedule.cpp.o"
  "CMakeFiles/coschedule.dir/coschedule.cpp.o.d"
  "coschedule"
  "coschedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coschedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
