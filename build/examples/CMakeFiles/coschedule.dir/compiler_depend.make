# Empty compiler generated dependencies file for coschedule.
# This may be replaced when dependencies are built.
