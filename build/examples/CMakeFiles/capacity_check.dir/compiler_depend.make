# Empty compiler generated dependencies file for capacity_check.
# This may be replaced when dependencies are built.
