file(REMOVE_RECURSE
  "CMakeFiles/capacity_check.dir/capacity_check.cpp.o"
  "CMakeFiles/capacity_check.dir/capacity_check.cpp.o.d"
  "capacity_check"
  "capacity_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
