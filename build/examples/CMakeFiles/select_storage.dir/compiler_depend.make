# Empty compiler generated dependencies file for select_storage.
# This may be replaced when dependencies are built.
