file(REMOVE_RECURSE
  "CMakeFiles/select_storage.dir/select_storage.cpp.o"
  "CMakeFiles/select_storage.dir/select_storage.cpp.o.d"
  "select_storage"
  "select_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
