# Empty dependencies file for tab12_selection.
# This may be replaced when dependencies are built.
