file(REMOVE_RECURSE
  "../bench/tab12_selection"
  "../bench/tab12_selection.pdb"
  "CMakeFiles/tab12_selection.dir/tab12_selection.cpp.o"
  "CMakeFiles/tab12_selection.dir/tab12_selection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab12_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
