file(REMOVE_RECURSE
  "../bench/fig04_phases"
  "../bench/fig04_phases.pdb"
  "CMakeFiles/fig04_phases.dir/fig04_phases.cpp.o"
  "CMakeFiles/fig04_phases.dir/fig04_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
