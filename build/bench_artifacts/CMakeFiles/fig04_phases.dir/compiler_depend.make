# Empty compiler generated dependencies file for fig04_phases.
# This may be replaced when dependencies are built.
