file(REMOVE_RECURSE
  "../bench/fig06_ior_model"
  "../bench/fig06_ior_model.pdb"
  "CMakeFiles/fig06_ior_model.dir/fig06_ior_model.cpp.o"
  "CMakeFiles/fig06_ior_model.dir/fig06_ior_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_ior_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
