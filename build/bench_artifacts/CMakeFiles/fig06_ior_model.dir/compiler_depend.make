# Empty compiler generated dependencies file for fig06_ior_model.
# This may be replaced when dependencies are built.
