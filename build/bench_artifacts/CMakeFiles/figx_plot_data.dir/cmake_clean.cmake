file(REMOVE_RECURSE
  "../bench/figx_plot_data"
  "../bench/figx_plot_data.pdb"
  "CMakeFiles/figx_plot_data.dir/figx_plot_data.cpp.o"
  "CMakeFiles/figx_plot_data.dir/figx_plot_data.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figx_plot_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
