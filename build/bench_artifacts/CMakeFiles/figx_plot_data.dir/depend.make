# Empty dependencies file for figx_plot_data.
# This may be replaced when dependencies are built.
