# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tabx_hdf5_flashio.
