file(REMOVE_RECURSE
  "../bench/tabx_hdf5_flashio"
  "../bench/tabx_hdf5_flashio.pdb"
  "CMakeFiles/tabx_hdf5_flashio.dir/tabx_hdf5_flashio.cpp.o"
  "CMakeFiles/tabx_hdf5_flashio.dir/tabx_hdf5_flashio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabx_hdf5_flashio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
