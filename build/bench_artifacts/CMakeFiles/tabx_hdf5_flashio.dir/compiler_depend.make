# Empty compiler generated dependencies file for tabx_hdf5_flashio.
# This may be replaced when dependencies are built.
