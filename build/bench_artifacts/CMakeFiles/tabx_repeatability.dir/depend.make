# Empty dependencies file for tabx_repeatability.
# This may be replaced when dependencies are built.
