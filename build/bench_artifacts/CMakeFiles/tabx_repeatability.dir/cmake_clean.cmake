file(REMOVE_RECURSE
  "../bench/tabx_repeatability"
  "../bench/tabx_repeatability.pdb"
  "CMakeFiles/tabx_repeatability.dir/tabx_repeatability.cpp.o"
  "CMakeFiles/tabx_repeatability.dir/tabx_repeatability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabx_repeatability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
