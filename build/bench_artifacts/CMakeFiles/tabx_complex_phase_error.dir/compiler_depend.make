# Empty compiler generated dependencies file for tabx_complex_phase_error.
# This may be replaced when dependencies are built.
