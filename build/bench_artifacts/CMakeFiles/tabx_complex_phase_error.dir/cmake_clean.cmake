file(REMOVE_RECURSE
  "../bench/tabx_complex_phase_error"
  "../bench/tabx_complex_phase_error.pdb"
  "CMakeFiles/tabx_complex_phase_error.dir/tabx_complex_phase_error.cpp.o"
  "CMakeFiles/tabx_complex_phase_error.dir/tabx_complex_phase_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabx_complex_phase_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
