file(REMOVE_RECURSE
  "../bench/micro_config_curves"
  "../bench/micro_config_curves.pdb"
  "CMakeFiles/micro_config_curves.dir/micro_config_curves.cpp.o"
  "CMakeFiles/micro_config_curves.dir/micro_config_curves.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_config_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
