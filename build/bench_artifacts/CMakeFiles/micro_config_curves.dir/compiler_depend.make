# Empty compiler generated dependencies file for micro_config_curves.
# This may be replaced when dependencies are built.
