file(REMOVE_RECURSE
  "../bench/tab14_error_finisterrae"
  "../bench/tab14_error_finisterrae.pdb"
  "CMakeFiles/tab14_error_finisterrae.dir/tab14_error_finisterrae.cpp.o"
  "CMakeFiles/tab14_error_finisterrae.dir/tab14_error_finisterrae.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab14_error_finisterrae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
