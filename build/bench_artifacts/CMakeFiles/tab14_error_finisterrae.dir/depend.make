# Empty dependencies file for tab14_error_finisterrae.
# This may be replaced when dependencies are built.
