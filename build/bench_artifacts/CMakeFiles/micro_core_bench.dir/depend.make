# Empty dependencies file for micro_core_bench.
# This may be replaced when dependencies are built.
