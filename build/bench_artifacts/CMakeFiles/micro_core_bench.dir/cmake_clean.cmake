file(REMOVE_RECURSE
  "../bench/micro_core_bench"
  "../bench/micro_core_bench.pdb"
  "CMakeFiles/micro_core_bench.dir/micro_core_bench.cpp.o"
  "CMakeFiles/micro_core_bench.dir/micro_core_bench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_core_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
