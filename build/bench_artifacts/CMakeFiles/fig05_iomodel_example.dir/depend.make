# Empty dependencies file for fig05_iomodel_example.
# This may be replaced when dependencies are built.
