file(REMOVE_RECURSE
  "../bench/fig05_iomodel_example"
  "../bench/fig05_iomodel_example.pdb"
  "CMakeFiles/fig05_iomodel_example.dir/fig05_iomodel_example.cpp.o"
  "CMakeFiles/fig05_iomodel_example.dir/fig05_iomodel_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_iomodel_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
