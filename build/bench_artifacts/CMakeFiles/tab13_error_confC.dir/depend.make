# Empty dependencies file for tab13_error_confC.
# This may be replaced when dependencies are built.
