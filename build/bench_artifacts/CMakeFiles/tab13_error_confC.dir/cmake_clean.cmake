file(REMOVE_RECURSE
  "../bench/tab13_error_confC"
  "../bench/tab13_error_confC.pdb"
  "CMakeFiles/tab13_error_confC.dir/tab13_error_confC.cpp.o"
  "CMakeFiles/tab13_error_confC.dir/tab13_error_confC.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab13_error_confC.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
