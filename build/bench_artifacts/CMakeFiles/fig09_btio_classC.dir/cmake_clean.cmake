file(REMOVE_RECURSE
  "../bench/fig09_btio_classC"
  "../bench/fig09_btio_classC.pdb"
  "CMakeFiles/fig09_btio_classC.dir/fig09_btio_classC.cpp.o"
  "CMakeFiles/fig09_btio_classC.dir/fig09_btio_classC.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_btio_classC.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
