# Empty compiler generated dependencies file for fig09_btio_classC.
# This may be replaced when dependencies are built.
