
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_btio_classC.cpp" "bench_artifacts/CMakeFiles/fig09_btio_classC.dir/fig09_btio_classC.cpp.o" "gcc" "bench_artifacts/CMakeFiles/fig09_btio_classC.dir/fig09_btio_classC.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_artifacts/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/iop_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/iop_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ior/CMakeFiles/iop_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/iozone/CMakeFiles/iop_iozone.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/iop_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/configs/CMakeFiles/iop_configs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/iop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/iop_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hdf5/CMakeFiles/iop_hdf5.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/iop_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/iop_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/iop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iop_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
