# Empty compiler generated dependencies file for tabx_ablation_tick.
# This may be replaced when dependencies are built.
