file(REMOVE_RECURSE
  "../bench/tabx_ablation_tick"
  "../bench/tabx_ablation_tick.pdb"
  "CMakeFiles/tabx_ablation_tick.dir/tabx_ablation_tick.cpp.o"
  "CMakeFiles/tabx_ablation_tick.dir/tabx_ablation_tick.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabx_ablation_tick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
