# Empty compiler generated dependencies file for tab11_btio_phase_desc.
# This may be replaced when dependencies are built.
