file(REMOVE_RECURSE
  "../bench/tab11_btio_phase_desc"
  "../bench/tab11_btio_phase_desc.pdb"
  "CMakeFiles/tab11_btio_phase_desc.dir/tab11_btio_phase_desc.cpp.o"
  "CMakeFiles/tab11_btio_phase_desc.dir/tab11_btio_phase_desc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab11_btio_phase_desc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
