# Empty compiler generated dependencies file for tabx_model_vs_trace.
# This may be replaced when dependencies are built.
