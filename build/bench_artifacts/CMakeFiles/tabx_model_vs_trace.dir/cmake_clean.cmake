file(REMOVE_RECURSE
  "../bench/tabx_model_vs_trace"
  "../bench/tabx_model_vs_trace.pdb"
  "CMakeFiles/tabx_model_vs_trace.dir/tabx_model_vs_trace.cpp.o"
  "CMakeFiles/tabx_model_vs_trace.dir/tabx_model_vs_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabx_model_vs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
