file(REMOVE_RECURSE
  "../bench/tabx_ssd_whatif"
  "../bench/tabx_ssd_whatif.pdb"
  "CMakeFiles/tabx_ssd_whatif.dir/tabx_ssd_whatif.cpp.o"
  "CMakeFiles/tabx_ssd_whatif.dir/tabx_ssd_whatif.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabx_ssd_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
