# Empty compiler generated dependencies file for tabx_ssd_whatif.
# This may be replaced when dependencies are built.
