# Empty compiler generated dependencies file for tab09_usage_confA.
# This may be replaced when dependencies are built.
