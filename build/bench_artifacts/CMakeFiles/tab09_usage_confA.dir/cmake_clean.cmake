file(REMOVE_RECURSE
  "../bench/tab09_usage_confA"
  "../bench/tab09_usage_confA.pdb"
  "CMakeFiles/tab09_usage_confA.dir/tab09_usage_confA.cpp.o"
  "CMakeFiles/tab09_usage_confA.dir/tab09_usage_confA.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab09_usage_confA.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
