# Empty compiler generated dependencies file for tabx_multifile_model.
# This may be replaced when dependencies are built.
