file(REMOVE_RECURSE
  "../bench/tabx_multifile_model"
  "../bench/tabx_multifile_model.pdb"
  "CMakeFiles/tabx_multifile_model.dir/tabx_multifile_model.cpp.o"
  "CMakeFiles/tabx_multifile_model.dir/tabx_multifile_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabx_multifile_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
