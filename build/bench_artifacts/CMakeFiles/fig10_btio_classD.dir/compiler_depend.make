# Empty compiler generated dependencies file for fig10_btio_classD.
# This may be replaced when dependencies are built.
