file(REMOVE_RECURSE
  "../bench/fig10_btio_classD"
  "../bench/fig10_btio_classD.pdb"
  "CMakeFiles/fig10_btio_classD.dir/fig10_btio_classD.cpp.o"
  "CMakeFiles/fig10_btio_classD.dir/fig10_btio_classD.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_btio_classD.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
