# Empty dependencies file for fig02_tracefile.
# This may be replaced when dependencies are built.
