file(REMOVE_RECURSE
  "../bench/fig02_tracefile"
  "../bench/fig02_tracefile.pdb"
  "CMakeFiles/fig02_tracefile.dir/fig02_tracefile.cpp.o"
  "CMakeFiles/fig02_tracefile.dir/fig02_tracefile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tracefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
