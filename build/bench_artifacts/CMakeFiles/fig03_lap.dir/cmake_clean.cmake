file(REMOVE_RECURSE
  "../bench/fig03_lap"
  "../bench/fig03_lap.pdb"
  "CMakeFiles/fig03_lap.dir/fig03_lap.cpp.o"
  "CMakeFiles/fig03_lap.dir/fig03_lap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_lap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
