# Empty compiler generated dependencies file for fig03_lap.
# This may be replaced when dependencies are built.
