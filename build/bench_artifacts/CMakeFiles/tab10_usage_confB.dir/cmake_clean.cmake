file(REMOVE_RECURSE
  "../bench/tab10_usage_confB"
  "../bench/tab10_usage_confB.pdb"
  "CMakeFiles/tab10_usage_confB.dir/tab10_usage_confB.cpp.o"
  "CMakeFiles/tab10_usage_confB.dir/tab10_usage_confB.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab10_usage_confB.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
