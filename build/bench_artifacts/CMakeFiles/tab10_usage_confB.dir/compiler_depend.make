# Empty compiler generated dependencies file for tab10_usage_confB.
# This may be replaced when dependencies are built.
