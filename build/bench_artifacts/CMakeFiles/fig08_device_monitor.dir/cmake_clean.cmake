file(REMOVE_RECURSE
  "../bench/fig08_device_monitor"
  "../bench/fig08_device_monitor.pdb"
  "CMakeFiles/fig08_device_monitor.dir/fig08_device_monitor.cpp.o"
  "CMakeFiles/fig08_device_monitor.dir/fig08_device_monitor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_device_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
