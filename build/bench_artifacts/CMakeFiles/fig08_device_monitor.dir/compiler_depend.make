# Empty compiler generated dependencies file for fig08_device_monitor.
# This may be replaced when dependencies are built.
