file(REMOVE_RECURSE
  "../bench/tab08_madbench_phases"
  "../bench/tab08_madbench_phases.pdb"
  "CMakeFiles/tab08_madbench_phases.dir/tab08_madbench_phases.cpp.o"
  "CMakeFiles/tab08_madbench_phases.dir/tab08_madbench_phases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab08_madbench_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
