# Empty compiler generated dependencies file for tab08_madbench_phases.
# This may be replaced when dependencies are built.
