#include <gtest/gtest.h>

#include <memory>

#include "monitor/monitor.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "storage/blockdev.hpp"
#include "util/units.hpp"

namespace iop::monitor {
namespace {

using iop::util::MiB;

storage::DiskParams testDisk() {
  storage::DiskParams p;
  p.name = "sda";
  p.seqReadBw = 100.0e6;
  p.seqWriteBw = 100.0e6;
  p.positionTime = 0;
  p.perRequestOverhead = 0;
  return p;
}

TEST(Monitor, SamplesRatesDuringActivity) {
  sim::Engine eng;
  storage::SingleDisk dev(eng, testDisk());
  DeviceMonitor mon(eng, {&dev.disk()}, 1.0);
  mon.start();
  eng.spawn([](storage::SingleDisk& dev,
               DeviceMonitor& mon) -> sim::Task<void> {
    // 100 MB/s for 3 seconds.
    for (int i = 0; i < 3; ++i) {
      co_await dev.access(static_cast<std::uint64_t>(i) * 100 * MiB,
                          100000000, storage::IoOp::Write);
    }
    mon.stop();
  }(dev, mon));
  eng.run();
  ASSERT_GE(mon.samples().size(), 3u);
  const auto& s = mon.samples()[1];
  // ~100 MB/s of writes = ~195312 sectors/s.
  EXPECT_NEAR(s.disks[0].sectorsWrittenPerSec, 100.0e6 / 512, 2000);
  EXPECT_NEAR(s.disks[0].utilization, 1.0, 0.01);
}

TEST(Monitor, IdleIntervalsShowZero) {
  sim::Engine eng;
  storage::SingleDisk dev(eng, testDisk());
  DeviceMonitor mon(eng, {&dev.disk()}, 1.0);
  mon.start();
  eng.spawn([](sim::Engine& e, storage::SingleDisk& dev,
               DeviceMonitor& mon) -> sim::Task<void> {
    co_await e.delay(2.5);  // idle
    co_await dev.access(0, 50000000, storage::IoOp::Read);
    mon.stop();
  }(eng, dev, mon));
  eng.run();
  ASSERT_GE(mon.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(mon.samples()[0].disks[0].sectorsReadPerSec, 0.0);
  EXPECT_DOUBLE_EQ(mon.samples()[0].disks[0].utilization, 0.0);
}

TEST(Monitor, PeakUtilization) {
  sim::Engine eng;
  storage::SingleDisk dev(eng, testDisk());
  DeviceMonitor mon(eng, {&dev.disk()}, 1.0);
  mon.start();
  eng.spawn([](storage::SingleDisk& dev, DeviceMonitor& mon)
                -> sim::Task<void> {
    co_await dev.access(0, 200000000, storage::IoOp::Write);
    mon.stop();
  }(dev, mon));
  eng.run();
  EXPECT_NEAR(mon.peakUtilization(), 1.0, 0.01);
}

TEST(Monitor, CsvHasHeaderAndRows) {
  sim::Engine eng;
  storage::SingleDisk dev(eng, testDisk());
  DeviceMonitor mon(eng, {&dev.disk()}, 0.5);
  mon.start();
  eng.spawn([](storage::SingleDisk& dev, DeviceMonitor& mon)
                -> sim::Task<void> {
    co_await dev.access(0, 100000000, storage::IoOp::Write);
    mon.stop();
  }(dev, mon));
  eng.run();
  auto csv = mon.renderCsv();
  EXPECT_NE(csv.find("time,disk"), std::string::npos);
  EXPECT_NE(csv.find("sda"), std::string::npos);
}

TEST(Monitor, RejectsNonPositiveInterval) {
  sim::Engine eng;
  EXPECT_THROW(DeviceMonitor(eng, {}, 0.0), std::invalid_argument);
}

TEST(Monitor, StartIsIdempotent) {
  sim::Engine eng;
  storage::SingleDisk dev(eng, testDisk());
  DeviceMonitor mon(eng, {&dev.disk()}, 1.0);
  mon.start();
  mon.start();
  mon.stop();
  eng.run();
  SUCCEED();
}

}  // namespace
}  // namespace iop::monitor
