// Tests for the paper's Section-V extensions implemented in this repo:
// the multi-op phase replayer and multi-file (ROMS-style) models.
#include <gtest/gtest.h>

#include <set>

#include "analysis/evaluate.hpp"
#include "analysis/multiop.hpp"
#include "analysis/planner.hpp"
#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "analysis/report.hpp"
#include "analysis/synthesize.hpp"
#include "analysis/trace_replay.hpp"
#include "apps/btio.hpp"
#include "apps/madbench.hpp"
#include "apps/roms.hpp"
#include "configs/configs.hpp"
#include "util/units.hpp"

namespace iop::analysis {
namespace {

using configs::ConfigId;
using iop::util::MiB;

core::IOModel madbenchModel(int np) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::MadbenchParams p;
  p.mount = cfg.mount;
  p.kpix = 4;
  p.busyWorkSeconds = 0.01;
  return runAndTrace(cfg, "madbench2", apps::makeMadbench(p), np).model;
}

TEST(MultiOp, ReplaysMixedPhaseWithPlausibleBandwidth) {
  auto model = madbenchModel(8);
  const core::Phase* mixed = nullptr;
  for (const auto& ph : model.phases()) {
    if (ph.ops.size() > 1) mixed = &ph;
  }
  ASSERT_NE(mixed, nullptr);
  auto result = replayMultiOpPhase(
      model, *mixed, [] { return configs::makeConfig(ConfigId::A); },
      "/raid/raid5");
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.bandwidth, util::fromMiBs(5));
  EXPECT_LT(result.bandwidth, util::fromMiBs(400));
}

TEST(MultiOp, CloseToMeasuredForMixedPhase) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::MadbenchParams p;
  p.mount = cfg.mount;
  p.kpix = 4;
  p.busyWorkSeconds = 0.01;
  auto run = runAndTrace(cfg, "madbench2", apps::makeMadbench(p), 8);
  const core::Phase* mixed = nullptr;
  for (const auto& ph : run.model.phases()) {
    if (ph.ops.size() > 1) mixed = &ph;
  }
  ASSERT_NE(mixed, nullptr);
  auto result = replayMultiOpPhase(
      run.model, *mixed, [] { return configs::makeConfig(ConfigId::A); },
      "/raid/raid5");
  EXPECT_LT(relativeErrorPct(result.bandwidth, mixed->measuredBandwidth()),
            40.0);
}

TEST(MultiOp, EstimateVariantUsesBothReplayers) {
  auto model = madbenchModel(8);
  Replayer ior([] { return configs::makeConfig(ConfigId::A); },
               "/raid/raid5");
  auto estimate = estimateIoTimeMultiOp(
      model, ior, [] { return configs::makeConfig(ConfigId::A); },
      "/raid/raid5");
  ASSERT_EQ(estimate.phases.size(), model.phases().size());
  EXPECT_GT(estimate.totalTimeSec, 0.0);
  for (const auto& pe : estimate.phases) {
    EXPECT_GT(pe.bandwidthCH, 0.0) << "phase " << pe.phaseId;
  }
}

TEST(MultiOp, RejectsPhasesWithoutOffsets) {
  auto model = madbenchModel(4);
  core::Phase broken = model.phases().front();
  broken.ops[0].initOffsetBytes.clear();
  EXPECT_THROW(replayMultiOpPhase(
                   model, broken,
                   [] { return configs::makeConfig(ConfigId::A); },
                   "/raid/raid5"),
               std::invalid_argument);
}

analysis::AppRun romsRun(int np) {
  auto cfg = configs::makeConfig(ConfigId::B);
  apps::RomsParams p;
  p.mount = cfg.mount;
  p.steps = 20;
  p.computePerStep = 0.01;
  return runAndTrace(cfg, "roms", apps::makeRoms(p), np);
}

TEST(MultiFile, ModelCoversAllThreeFiles) {
  auto run = romsRun(4);
  EXPECT_EQ(run.model.files().size(), 3u);
  std::set<int> filesWithPhases;
  for (const auto& ph : run.model.phases()) filesWithPhases.insert(ph.idF);
  EXPECT_EQ(filesWithPhases.size(), 3u);
}

TEST(MultiFile, PhaseWeightsConservePerFileBytes) {
  auto run = romsRun(4);
  for (const auto& f : run.model.files()) {
    std::uint64_t traced = 0;
    for (const auto& rec : run.trace.recordsForFile(f.fileId)) {
      traced += rec.requestBytes;
    }
    std::uint64_t modeled = 0;
    for (const auto& ph : run.model.phases()) {
      if (ph.idF == f.fileId) modeled += ph.weightBytes;
    }
    EXPECT_EQ(modeled, traced) << "file " << f.fileId;
  }
}

TEST(MultiFile, InterleavedFilesKeepPerFileFamilies) {
  // History records (every 5 steps) and restart records (every 20) are
  // interleaved in time; the history family must not be split by the
  // restart phases in between.
  auto run = romsRun(4);
  std::set<int> hisFamilies;
  std::set<int> rstFamilies;
  for (const auto& ph : run.model.phases()) {
    const auto* meta = run.trace.fileMeta(ph.idF);
    ASSERT_NE(meta, nullptr);
    if (meta->path == "ocean_his.nc") hisFamilies.insert(ph.familyId);
    if (meta->path == "ocean_rst.nc") rstFamilies.insert(ph.familyId);
  }
  EXPECT_EQ(hisFamilies.size(), 1u);
  EXPECT_EQ(rstFamilies.size(), 1u);
}

TEST(MultiFile, RecordAppendFormulaInferred) {
  auto run = romsRun(4);
  // History phases: initOffset = idP*rs + rs*np*(record-1), like Table XI.
  const core::Phase* his = nullptr;
  for (const auto& ph : run.model.phases()) {
    const auto* meta = run.trace.fileMeta(ph.idF);
    if (meta != nullptr && meta->path == "ocean_his.nc") {
      his = &ph;
      break;
    }
  }
  ASSERT_NE(his, nullptr);
  const auto& fn = his->ops[0].offsetFn;
  EXPECT_TRUE(fn.exact);
  EXPECT_DOUBLE_EQ(fn.aBytes, 8.0 * MiB);
  EXPECT_DOUBLE_EQ(fn.cBytes, 4.0 * 8 * MiB);  // np * rs
}

TEST(MultiFile, EstimationCoversEveryFile) {
  auto run = romsRun(4);
  Replayer replayer([] { return configs::makeConfig(ConfigId::B); },
                    "/mnt/pvfs2");
  auto estimate = estimateIoTime(run.model, replayer);
  EXPECT_EQ(estimate.phases.size(), run.model.phases().size());
  EXPECT_GT(estimate.totalTimeSec, 0.0);
  auto rows = compareEstimate(estimate, run.model);
  EXPECT_GE(rows.size(), 3u);  // at least one group per file
}

TEST(TraceReplay, SameConfigReproducesMeasuredTimes) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::MadbenchParams p;
  p.mount = cfg.mount;
  p.kpix = 4;
  p.busyWorkSeconds = 0.05;
  auto run = runAndTrace(cfg, "madbench2", apps::makeMadbench(p), 8);
  auto replay = replayTrace(
      run.trace, [] { return configs::makeConfig(ConfigId::A); },
      "/raid/raid5");
  ASSERT_EQ(replay.measuredModel.phases().size(),
            run.model.phases().size());
  for (std::size_t i = 0; i < run.model.phases().size(); ++i) {
    const auto& orig = run.model.phases()[i];
    const auto& rep = replay.measuredModel.phases()[i];
    EXPECT_EQ(orig.weightBytes, rep.weightBytes);
    EXPECT_EQ(orig.rep, rep.rep);
    // Same configuration + preserved think time: timings track closely.
    EXPECT_LT(relativeErrorPct(rep.measuredIoTime(),
                               orig.measuredIoTime()),
              20.0)
        << "phase " << orig.id;
  }
}

TEST(TraceReplay, DifferentConfigKeepsPhaseStructure) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::BtioParams p;
  p.mount = cfg.mount;
  p.cls = apps::BtClass::A;
  p.dumpsOverride = 6;
  auto run = runAndTrace(cfg, "btio", apps::makeBtio(p), 4);
  auto replay = replayTrace(
      run.trace, [] { return configs::makeConfig(ConfigId::B); },
      "/mnt/pvfs2");
  ASSERT_EQ(replay.measuredModel.phases().size(), 7u);
  EXPECT_EQ(replay.measuredModel.phases().back().rep, 6u);
  EXPECT_GT(replay.makespanSeconds, 0.0);
}

TEST(TraceReplay, ThinkTimeOptionShrinksMakespan) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::BtioParams p;
  p.mount = cfg.mount;
  p.cls = apps::BtClass::A;
  p.dumpsOverride = 4;
  p.computePerStep = 0.5;  // plenty of think time
  auto run = runAndTrace(cfg, "btio", apps::makeBtio(p), 4);
  auto builder = [] { return configs::makeConfig(ConfigId::A); };
  auto withThink = replayTrace(run.trace, builder, "/raid/raid5");
  TraceReplayOptions noThink;
  noThink.preserveThinkTime = false;
  auto without = replayTrace(run.trace, builder, "/raid/raid5", noThink);
  EXPECT_LT(without.makespanSeconds, withThink.makespanSeconds * 0.6);
}

TEST(TraceReplay, UnknownOperationRejected) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::BtioParams p;
  p.mount = cfg.mount;
  p.cls = apps::BtClass::A;
  p.dumpsOverride = 2;
  auto run = runAndTrace(cfg, "btio", apps::makeBtio(p), 4);
  run.trace.perRank[0][0].op = "MPI_File_levitate";
  EXPECT_THROW(replayTrace(run.trace,
                           [] { return configs::makeConfig(ConfigId::A); },
                           "/raid/raid5"),
               std::runtime_error);
}

TEST(TraceReplay, ComparableAgainstEstimates) {
  // The replay's measured model plugs straight into compareEstimate.
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::BtioParams p;
  p.mount = cfg.mount;
  p.cls = apps::BtClass::A;
  p.dumpsOverride = 5;
  auto run = runAndTrace(cfg, "btio", apps::makeBtio(p), 4);
  Replayer replayer([] { return configs::makeConfig(ConfigId::B); },
                    "/mnt/pvfs2");
  auto estimate = estimateIoTime(run.model, replayer);
  auto replay = replayTrace(
      run.trace, [] { return configs::makeConfig(ConfigId::B); },
      "/mnt/pvfs2");
  auto rows = compareEstimate(estimate, replay.measuredModel);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) EXPECT_GT(row.timeMD, 0.0);
}

/// Compare two models structurally (weights, reps, ops, offsets).
void expectSameStructure(const core::IOModel& a, const core::IOModel& b) {
  ASSERT_EQ(a.phases().size(), b.phases().size());
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    const auto& pa = a.phases()[i];
    const auto& pb = b.phases()[i];
    EXPECT_EQ(pa.weightBytes, pb.weightBytes) << "phase " << pa.id;
    EXPECT_EQ(pa.rep, pb.rep) << "phase " << pa.id;
    EXPECT_EQ(pa.ranks, pb.ranks) << "phase " << pa.id;
    ASSERT_EQ(pa.ops.size(), pb.ops.size()) << "phase " << pa.id;
    for (std::size_t j = 0; j < pa.ops.size(); ++j) {
      EXPECT_EQ(pa.ops[j].op, pb.ops[j].op);
      EXPECT_EQ(pa.ops[j].rsBytes, pb.ops[j].rsBytes);
      EXPECT_EQ(pa.ops[j].initOffsetBytes, pb.ops[j].initOffsetBytes);
    }
  }
}

TEST(Synthesize, MadbenchModelRoundTrips) {
  // Extract a model, generate a synthetic app from it, trace THAT, and
  // the extracted model must come back identical.
  auto model = madbenchModel(8);
  auto cfg = configs::makeConfig(ConfigId::B);
  auto run = runAndTrace(cfg, "synthetic-madbench",
                         makeSyntheticApp(model, cfg.mount), 8);
  expectSameStructure(model, run.model);
}

TEST(Synthesize, BtioModelRoundTrips) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::BtioParams p;
  p.mount = cfg.mount;
  p.cls = apps::BtClass::A;
  p.dumpsOverride = 8;
  auto original = runAndTrace(cfg, "btio", apps::makeBtio(p), 4);
  auto target = configs::makeConfig(ConfigId::C);
  auto synthetic = runAndTrace(
      target, "synthetic-btio",
      makeSyntheticApp(original.model, target.mount), 4);
  expectSameStructure(original.model, synthetic.model);
}

TEST(Synthesize, RomsMultiFileModelRoundTrips) {
  auto run = romsRun(4);
  auto cfg = configs::makeConfig(ConfigId::B);
  auto synthetic = runAndTrace(cfg, "synthetic-roms",
                               makeSyntheticApp(run.model, cfg.mount), 4);
  expectSameStructure(run.model, synthetic.model);
}

TEST(Synthesize, RejectsUnsynthesizableModels) {
  auto model = madbenchModel(4);
  core::IOModel broken = model;
  broken.phases()[0].ops[0].initOffsetBytes.clear();
  EXPECT_THROW(makeSyntheticApp(broken, "/x"), std::invalid_argument);
}

TEST(Planner, OverlapMatchesHandComputation) {
  // Two synthetic single-phase models with known windows.
  auto mkModel = [](double start, double end) {
    core::Phase ph;
    ph.id = 1;
    ph.startTime = start;
    ph.endTime = end;
    return core::IOModel("synthetic", 1, {}, {ph});
  };
  auto a = mkModel(0, 10);
  auto b = mkModel(5, 20);
  EXPECT_DOUBLE_EQ(ioOverlapSeconds(a, 0, b, 0), 5.0);
  EXPECT_DOUBLE_EQ(ioOverlapSeconds(a, 0, b, 5), 0.0);  // b shifted away
  EXPECT_DOUBLE_EQ(ioOverlapSeconds(a, 8, b, 0), 10.0);
}

TEST(Planner, StaggersSecondAppPastTheFirst) {
  auto run = romsRun(4);
  std::vector<const core::IOModel*> apps{&run.model, &run.model};
  PlannerOptions opt;
  opt.stepSeconds = 1.0;
  auto plan = planStaggeredLaunch(apps, opt);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_DOUBLE_EQ(plan[0].startOffset, 0.0);
  EXPECT_GT(plan[1].startOffset, 0.0);
  EXPECT_NEAR(ioOverlapSeconds(run.model, plan[0].startOffset, run.model,
                               plan[1].startOffset),
              0.0, 1e-9);
}

TEST(Planner, KeepsNonConflictingAppsUnstaggered) {
  // An app with one early window and one with a late window don't clash:
  // neither should be delayed.
  auto mkModel = [](double start, double end) {
    core::Phase ph;
    ph.id = 1;
    ph.startTime = start;
    ph.endTime = end;
    return core::IOModel("synthetic", 1, {}, {ph});
  };
  auto early = mkModel(0, 5);
  auto late = mkModel(100, 110);
  std::vector<const core::IOModel*> apps{&early, &late};
  auto plan = planStaggeredLaunch(apps);
  EXPECT_DOUBLE_EQ(plan[0].startOffset, 0.0);
  EXPECT_DOUBLE_EQ(plan[1].startOffset, 0.0);
}

TEST(Planner, RejectsBadOptions) {
  PlannerOptions opt;
  opt.stepSeconds = 0;
  EXPECT_THROW(planStaggeredLaunch({}, opt), std::invalid_argument);
}

TEST(Report, ContainsModelUsageAndRecommendation) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::MadbenchParams p;
  p.mount = cfg.mount;
  p.kpix = 4;
  p.busyWorkSeconds = 0.01;
  auto run = runAndTrace(cfg, "madbench2", apps::makeMadbench(p), 8);
  ReportOptions options;
  options.targets = {ConfigId::A, ConfigId::B};
  auto report = generateReport(run, ConfigId::A, options);
  EXPECT_NE(report.find("# I/O report: madbench2"), std::string::npos);
  EXPECT_NE(report.find("idP*8*"), std::string::npos);
  EXPECT_NE(report.find("System usage"), std::string::npos);
  EXPECT_NE(report.find("Configuration B"), std::string::npos);
  EXPECT_NE(report.find("**Recommendation:**"), std::string::npos);
}

TEST(Report, UsageSectionOptional) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::BtioParams p;
  p.mount = cfg.mount;
  p.cls = apps::BtClass::A;
  p.dumpsOverride = 3;
  auto run = runAndTrace(cfg, "btio", apps::makeBtio(p), 4);
  ReportOptions options;
  options.targets = {ConfigId::A};
  options.includeUsage = false;
  auto report = generateReport(run, ConfigId::A, options);
  EXPECT_EQ(report.find("System usage"), std::string::npos);
}

TEST(Report, FamiliesCollapseIntoOneRow) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::BtioParams p;
  p.mount = cfg.mount;
  p.cls = apps::BtClass::A;
  p.dumpsOverride = 10;
  auto run = runAndTrace(cfg, "btio", apps::makeBtio(p), 4);
  ReportOptions options;
  options.targets = {ConfigId::A};
  options.includeUsage = false;
  auto report = generateReport(run, ConfigId::A, options);
  EXPECT_NE(report.find("| 1-10 |"), std::string::npos);
  EXPECT_NE(report.find("| 11 |"), std::string::npos);
}

}  // namespace
}  // namespace iop::analysis
