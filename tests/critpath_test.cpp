// iop::obs v2 tests: dependency-edge recording, critical-path extraction
// and blame attribution (the 1e-9 makespan-tiling invariant on real
// applications), run captures, the regression-diff engine, and the
// structured logger.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "analysis/blame.hpp"
#include "analysis/runner.hpp"
#include "apps/btio.hpp"
#include "apps/madbench.hpp"
#include "configs/configs.hpp"
#include "obs/benchdiff.hpp"
#include "obs/capture.hpp"
#include "obs/critpath.hpp"
#include "obs/diff.hpp"
#include "obs/edges.hpp"
#include "obs/hub.hpp"
#include "obs/log.hpp"

namespace iop {
namespace {

// --- edge recorder ------------------------------------------------------

TEST(EdgeRecorder, RecordsActivitiesLinksAndHorizon) {
  obs::EdgeRecorder rec;
  const auto a = rec.begin(obs::ActKind::MpiIo, 0, "write", 1.0, 64);
  const auto b = rec.begin(obs::ActKind::Disk, -1, "disk0", 1.5, 64, a);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_FALSE(rec.activities()[0].closed());
  rec.end(b, 2.0);
  rec.end(a, 2.5);
  rec.end(-1, 9.0);  // kNoCause must be ignored
  EXPECT_TRUE(rec.activities()[0].closed());
  EXPECT_EQ(rec.activities()[1].cause, a);
  EXPECT_EQ(rec.activities()[1].bytes, 64u);

  const auto i = rec.instant(obs::ActKind::Collective, 1, "arrive", 2.2, a);
  EXPECT_TRUE(rec.activities()[static_cast<std::size_t>(i)].closed());
  EXPECT_DOUBLE_EQ(rec.activities()[static_cast<std::size_t>(i)].begin, 2.2);
  EXPECT_DOUBLE_EQ(rec.activities()[static_cast<std::size_t>(i)].end, 2.2);

  rec.link(i, a);
  ASSERT_EQ(rec.links().size(), 1u);
  EXPECT_EQ(rec.links()[0].pred, i);
  EXPECT_EQ(rec.links()[0].succ, a);

  rec.noteDispatch(3.5);
  rec.noteDispatch(3.0);
  EXPECT_DOUBLE_EQ(rec.horizon(), 3.5);
  EXPECT_EQ(rec.dispatches(), 2u);
}

// --- critical path on a hand-built graph --------------------------------

// Two rank-owned ops with a cache+disk service chain under the first:
//   A: MpiIo rank0 [1,3]  with children C1: Cache [1.2,1.8], C2: Disk
//   [1.8,2.6];  B: MpiIo rank0 [4,6];  makespan 7.
obs::EdgeRecorder syntheticGraph() {
  obs::EdgeRecorder rec;
  const auto a = rec.begin(obs::ActKind::MpiIo, 0, "opA", 1.0, 100);
  const auto c1 = rec.begin(obs::ActKind::Cache, -1, "cache", 1.2, 100, a);
  rec.end(c1, 1.8);
  const auto c2 = rec.begin(obs::ActKind::Disk, -1, "disk", 1.8, 100, a);
  rec.end(c2, 2.6);
  rec.end(a, 3.0);
  const auto b = rec.begin(obs::ActKind::MpiIo, 0, "opB", 4.0, 100);
  rec.end(b, 6.0);
  return rec;
}

TEST(CriticalPath, TilesMakespanContiguouslyAndExactly) {
  const auto rec = syntheticGraph();
  const auto path = obs::computeCriticalPath(rec, 7.0);
  ASSERT_FALSE(path.segments.empty());
  EXPECT_DOUBLE_EQ(path.segments.front().begin, 0.0);
  EXPECT_DOUBLE_EQ(path.segments.back().end, 7.0);
  for (std::size_t i = 1; i < path.segments.size(); ++i) {
    EXPECT_DOUBLE_EQ(path.segments[i].begin, path.segments[i - 1].end);
  }
  EXPECT_NEAR(path.totalSeconds(), 7.0, 1e-12);
}

TEST(CriticalPath, ClimbsFromChildrenBackToProgramOrder) {
  // The walk descends into opA's cache/disk children; reaching the first
  // child (no predecessors) it must climb back to opA and blame opA's
  // own lead-in [1.0, 1.2] instead of declaring everything before 1.8 a
  // startup gap.
  const auto rec = syntheticGraph();
  const auto path = obs::computeCriticalPath(rec, 7.0);
  EXPECT_NEAR(path.byCategory.at("mpi-io"), 2.0 + 0.4 + 0.2, 1e-12);
  EXPECT_NEAR(path.byCategory.at("disk"), 0.8, 1e-12);
  EXPECT_NEAR(path.byCategory.at("cache"), 0.6, 1e-12);
  EXPECT_NEAR(path.byCategory.at("startup"), 1.0, 1e-12);
  EXPECT_NEAR(path.byCategory.at("compute"), 1.0, 1e-12);
  EXPECT_NEAR(path.byCategory.at("finalize"), 1.0, 1e-12);
}

TEST(CriticalPath, RendezvousLinkCrossesRanks) {
  // Rank 1's arrival instant precedes rank 0's collective: the path from
  // the collective must step across ranks through the link.
  obs::EdgeRecorder rec;
  const auto w = rec.begin(obs::ActKind::MpiIo, 1, "slow write", 0.5, 10);
  rec.end(w, 4.0);
  const auto arrive = rec.instant(obs::ActKind::Collective, 1, "arrive", 4.0);
  const auto coll = rec.begin(obs::ActKind::Collective, 0, "barrier", 4.0);
  rec.link(arrive, coll);
  rec.end(coll, 5.0);
  const auto path = obs::computeCriticalPath(rec, 5.0);
  EXPECT_NEAR(path.byRank.at(1), 3.5, 1e-12);
  EXPECT_NEAR(path.byRank.at(0), 1.0, 1e-12);
  EXPECT_NEAR(path.totalSeconds(), 5.0, 1e-12);
}

// --- phase attribution --------------------------------------------------

TEST(BlameTable, OverlappingWindowsResolveSmallestFirstAndSumToMakespan) {
  const auto rec = syntheticGraph();
  const auto path = obs::computeCriticalPath(rec, 7.0);
  std::vector<obs::PhaseWindow> windows(2);
  windows[0] = {1, "outer", 0.5, 6.5, 1000};
  windows[1] = {2, "inner", 1.5, 2.5, 400};
  const auto table = obs::attributePhases(path, windows);
  ASSERT_EQ(table.rows.size(), 2u);
  // The inner window owns exactly [1.5, 2.5] of critical activity time.
  EXPECT_NEAR(table.rows[1].attrSeconds, 1.0, 1e-12);
  const double covered = table.attributedIoSeconds() + table.gapSeconds +
                         table.outsideSeconds;
  EXPECT_NEAR(covered, 7.0, 1e-9);
  // The eq. 1-2 identity: estimating from the attributed bandwidths gives
  // back the attributed time.
  EXPECT_NEAR(table.estimateSeconds(), table.attributedIoSeconds(), 1e-9);
  EXPECT_NEAR(table.rows[1].attrBandwidth, 400.0, 1e-9);
}

// --- acceptance on real applications ------------------------------------

struct BlamedRun {
  double makespan = 0;
  obs::CriticalPathResult path;
  obs::BlameTable table;
};

template <typename MakeMain>
BlamedRun blameApp(const std::string& name, MakeMain makeMain, int np) {
  auto cluster = configs::makeConfig(configs::ConfigId::A);
  obs::Session session;
  cluster.engine->setObs(session.hub());
  auto run = analysis::runAndTrace(cluster, name, makeMain(cluster), np);
  BlamedRun out;
  out.makespan = run.makespanSeconds;
  out.path = obs::computeCriticalPath(session.edges(), run.makespanSeconds);
  out.table =
      obs::attributePhases(out.path, analysis::phaseWindows(run.model));
  return out;
}

void expectBlameInvariants(const BlamedRun& run) {
  // Tiling invariant: the blame segments decompose the makespan exactly.
  EXPECT_NEAR(run.path.totalSeconds(), run.makespan, 1e-9);
  const double covered = run.table.attributedIoSeconds() +
                         run.table.gapSeconds + run.table.outsideSeconds;
  EXPECT_NEAR(covered, run.makespan, 1e-9);
  // Eq. 1-2 consistency: sum(weight / BW_attr) reproduces T_attr.
  EXPECT_NEAR(run.table.estimateSeconds(), run.table.attributedIoSeconds(),
              1e-9);
  EXPECT_NEAR(run.table.residualSeconds(),
              run.makespan - run.table.attributedIoSeconds(), 1e-9);
  // The path must find real I/O work, not degenerate into one giant gap.
  EXPECT_GT(run.table.attributedIoSeconds(), 0.0);
}

TEST(BlameAcceptance, BtioFullDecomposesMakespan) {
  auto run = blameApp(
      "btio",
      [](const configs::ClusterConfig& cluster) {
        apps::BtioParams p;
        p.mount = cluster.mount;
        p.cls = apps::BtClass::A;
        p.fullSubtype = true;
        return apps::makeBtio(p);
      },
      4);
  expectBlameInvariants(run);
}

TEST(BlameAcceptance, MadbenchDecomposesMakespan) {
  auto run = blameApp(
      "madbench2",
      [](const configs::ClusterConfig& cluster) {
        apps::MadbenchParams p;
        p.mount = cluster.mount;
        p.kpix = 8;
        p.bins = 8;
        return apps::makeMadbench(p);
      },
      4);
  expectBlameInvariants(run);
}

// --- run captures -------------------------------------------------------

obs::RunCapture sampleCapture() {
  obs::RunCapture cap;
  cap.app = "btio";
  cap.np = 4;
  cap.config = "Configuration A";
  cap.makespan = 31.25;
  obs::CapturePhase p;
  p.id = 1;
  p.familyId = 2;
  p.weightBytes = 1048576;
  p.ioSeconds = 0.5;
  p.bandwidth = 2097152;
  p.label = "W f1 with \"quotes\" and spaces";
  cap.phases.push_back(p);
  cap.metricsCsv =
      "disk.queue_depth,histogram,le_1,3\n"
      "disk.queue_depth,histogram,le_inf,1\n";
  return cap;
}

TEST(RunCapture, RoundTripsThroughStreamExactly) {
  const auto cap = sampleCapture();
  std::ostringstream out;
  cap.write(out);
  std::istringstream in(out.str());
  const auto back = obs::RunCapture::read(in);
  EXPECT_EQ(back.app, cap.app);
  EXPECT_EQ(back.np, cap.np);
  EXPECT_EQ(back.config, cap.config);
  EXPECT_DOUBLE_EQ(back.makespan, cap.makespan);
  ASSERT_EQ(back.phases.size(), 1u);
  EXPECT_EQ(back.phases[0].label, cap.phases[0].label);
  EXPECT_EQ(back.phases[0].weightBytes, cap.phases[0].weightBytes);
  EXPECT_DOUBLE_EQ(back.phases[0].ioSeconds, cap.phases[0].ioSeconds);
  EXPECT_EQ(back.metricsCsv, cap.metricsCsv);
}

TEST(RunCapture, RejectsForeignFiles) {
  std::istringstream in("not a capture\n");
  EXPECT_THROW(obs::RunCapture::read(in), std::runtime_error);
}

// --- diff engine --------------------------------------------------------

TEST(Diff, IdenticalCapturesProduceNoFindings) {
  const auto cap = sampleCapture();
  const auto result = obs::diffCaptures(cap, cap);
  EXPECT_TRUE(result.findings.empty());
  EXPECT_EQ(result.regressions(), 0u);
}

TEST(Diff, SlowerPhaseAndMakespanAreRegressions) {
  const auto a = sampleCapture();
  auto b = a;
  b.makespan *= 1.5;
  b.phases[0].ioSeconds *= 2;
  b.phases[0].bandwidth /= 2;
  const auto result = obs::diffCaptures(a, b);
  EXPECT_GE(result.regressions(), 2u);
  bool sawMakespan = false;
  for (const auto& f : result.findings) {
    if (f.kind == obs::DiffFinding::Kind::Makespan) {
      sawMakespan = true;
      EXPECT_TRUE(f.regression);
      EXPECT_NEAR(f.deltaPct, 50.0, 1e-9);
    }
  }
  EXPECT_TRUE(sawMakespan);
}

TEST(Diff, ImprovementsAreFindingsButNotRegressions) {
  const auto a = sampleCapture();
  auto b = a;
  b.phases[0].ioSeconds /= 2;
  b.phases[0].bandwidth *= 2;
  const auto result = obs::diffCaptures(a, b);
  EXPECT_FALSE(result.findings.empty());
  EXPECT_EQ(result.regressions(), 0u);
}

TEST(Diff, HistogramShapeChangeIsDetected) {
  const auto a = sampleCapture();
  auto b = a;
  // All mass moves from the le_1 bucket to the overflow bucket.
  b.metricsCsv =
      "disk.queue_depth,histogram,le_1,0\n"
      "disk.queue_depth,histogram,le_inf,4\n";
  const auto result = obs::diffCaptures(a, b);
  bool sawShape = false;
  for (const auto& f : result.findings) {
    if (f.kind == obs::DiffFinding::Kind::HistogramShape) sawShape = true;
  }
  EXPECT_TRUE(sawShape);
}

TEST(Diff, ThresholdsSuppressSmallChanges) {
  const auto a = sampleCapture();
  auto b = a;
  b.makespan *= 1.02;           // +2% < default 5%
  b.phases[0].ioSeconds *= 1.02;
  const auto result = obs::diffCaptures(a, b);
  EXPECT_EQ(result.regressions(), 0u);
  obs::DiffOptions strict;
  strict.thresholdPct = 1.0;
  EXPECT_GT(obs::diffCaptures(a, b, strict).regressions(), 0u);
}

TEST(Diff, ParseHistogramBucketsGroupsByMetric) {
  const auto buckets = obs::parseHistogramBuckets(
      "a.lat,histogram,le_0.5,1\n"
      "a.lat,histogram,le_inf,2\n"
      "a.lat,histogram,count,3\n"   // not a bucket row
      "b.depth,histogram,le_1,7\n"
      "c.count,counter,value,9\n");  // not a histogram
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].first, "a.lat");
  EXPECT_EQ(buckets[0].second, (std::vector<double>{1, 2}));
  EXPECT_EQ(buckets[1].first, "b.depth");
  EXPECT_EQ(buckets[1].second, (std::vector<double>{7}));
}

// --- logger -------------------------------------------------------------

TEST(Logger, FiltersByLevelAndEmitsJsonl) {
  obs::Logger log(obs::LogLevel::Info);
  std::string sink;
  log.captureTo(&sink);
  log.debug("x", "dropped");
  log.info("tool", "wrote_file", "\"path\":\"a b\",\"n\":3");
  log.warn("disk", "queue_saturated");
  log.captureTo(nullptr);
  EXPECT_EQ(log.lineCount(), 2u);
  EXPECT_EQ(sink.find("dropped"), std::string::npos);
  EXPECT_NE(
      sink.find("{\"level\":\"info\",\"component\":\"tool\","
                "\"event\":\"wrote_file\",\"path\":\"a b\",\"n\":3}"),
      std::string::npos);
  EXPECT_NE(sink.find("\"level\":\"warn\""), std::string::npos);
}

TEST(Logger, OffSilencesEverything) {
  obs::Logger log(obs::LogLevel::Off);
  std::string sink;
  log.captureTo(&sink);
  log.warn("x", "y");
  EXPECT_TRUE(sink.empty());
  EXPECT_FALSE(log.enabled(obs::LogLevel::Warn));
}

// --- similarity alignment ----------------------------------------------

obs::CapturePhase makePhase(int id, const std::string& label,
                            std::uint64_t weight, double seconds) {
  obs::CapturePhase p;
  p.id = id;
  p.familyId = id;
  p.weightBytes = weight;
  p.ioSeconds = seconds;
  p.bandwidth = seconds > 0 ? static_cast<double>(weight) / seconds : 0;
  p.label = label;
  return p;
}

TEST(DiffAlign, ParseAlignModeNames) {
  EXPECT_EQ(obs::parseAlignMode("id"), obs::AlignMode::ById);
  EXPECT_EQ(obs::parseAlignMode("similarity"), obs::AlignMode::BySimilarity);
  EXPECT_THROW(obs::parseAlignMode("fuzzy"), std::invalid_argument);
}

TEST(DiffAlign, SimilarityMatchesRenumberedPhases) {
  // The "after" run re-detects the same three phases with shifted ids, as
  // happens when phase detection splits an early window differently.
  obs::RunCapture a;
  a.phases = {makePhase(1, "W f1", 1000, 0.1), makePhase(2, "W f1", 2000, 0.2),
              makePhase(3, "R f1", 4000, 0.4)};
  obs::RunCapture b;
  b.phases = {makePhase(4, "W f1", 1000, 0.1), makePhase(5, "W f1", 2000, 0.2),
              makePhase(6, "R f1", 4000, 0.4)};

  // By id: nothing matches — six missing-phase findings.
  const auto byId = obs::alignPhases(a, b, obs::AlignMode::ById);
  std::size_t matchedById = 0;
  for (const auto& [pa, pb] : byId) {
    if (pa != nullptr && pb != nullptr) ++matchedById;
  }
  EXPECT_EQ(matchedById, 0u);

  // By similarity: every phase pairs up in order within its label group.
  const auto bySim = obs::alignPhases(a, b, obs::AlignMode::BySimilarity);
  ASSERT_EQ(bySim.size(), 3u);
  for (const auto& [pa, pb] : bySim) {
    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    EXPECT_EQ(pa->weightBytes, pb->weightBytes);
    EXPECT_EQ(pa->id + 3, pb->id);
  }

  // The capture diff under similarity alignment reports no regressions.
  obs::DiffOptions options;
  options.align = obs::AlignMode::BySimilarity;
  const auto result = obs::diffCaptures(a, b, options);
  EXPECT_EQ(result.regressions(), 0u);
}

TEST(DiffAlign, DissimilarWeightsStayUnmatched) {
  obs::RunCapture a;
  a.phases = {makePhase(1, "W f1", 1000, 0.1)};
  obs::RunCapture b;
  b.phases = {makePhase(9, "W f1", 100000, 10.0)};  // 100x the weight
  const auto pairs = obs::alignPhases(a, b, obs::AlignMode::BySimilarity);
  ASSERT_EQ(pairs.size(), 2u);  // one a-only + one b-only
  EXPECT_EQ(pairs[0].second, nullptr);
  EXPECT_EQ(pairs[1].first, nullptr);
}

TEST(DiffAlign, ExtraPhaseBecomesGap) {
  obs::RunCapture a;
  a.phases = {makePhase(1, "W f1", 1000, 0.1), makePhase(2, "W f1", 1000, 0.1)};
  obs::RunCapture b;
  b.phases = {makePhase(7, "W f1", 1000, 0.1), makePhase(8, "W f1", 1000, 0.1),
              makePhase(9, "W f1", 1000, 0.1)};
  const auto pairs = obs::alignPhases(a, b, obs::AlignMode::BySimilarity);
  std::size_t matched = 0, bOnly = 0;
  for (const auto& [pa, pb] : pairs) {
    if (pa != nullptr && pb != nullptr) ++matched;
    if (pa == nullptr) ++bOnly;
  }
  EXPECT_EQ(matched, 2u);
  EXPECT_EQ(bOnly, 1u);
}

// --- bench JSON diff ----------------------------------------------------

constexpr const char* kBenchA =
    "{\"schema\":\"iop-bench/1\",\"results\":["
    "{\"name\":\"replay/btio\",\"iterations\":10,\"ns_per_op\":1000.0,"
    "\"bytes_per_second\":5.0e8},"
    "{\"name\":\"extract/model\",\"iterations\":5,\"ns_per_op\":2000.0}"
    "]}";

TEST(BenchDiff, ParsesBenchJson) {
  const auto entries = obs::parseBenchJson(kBenchA);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "replay/btio");
  EXPECT_EQ(entries[0].iterations, 10);
  EXPECT_DOUBLE_EQ(entries[0].nsPerOp, 1000.0);
  EXPECT_DOUBLE_EQ(entries[0].bytesPerSecond, 5.0e8);
  EXPECT_DOUBLE_EQ(entries[1].bytesPerSecond, 0.0);

  EXPECT_THROW(obs::parseBenchJson("{\"schema\":\"other/1\"}"),
               std::invalid_argument);
  EXPECT_THROW(obs::parseBenchJson("not json"), std::invalid_argument);
}

TEST(BenchDiff, FlagsRegressionsBeyondThreshold) {
  auto before = obs::parseBenchJson(kBenchA);
  auto after = before;
  after[0].nsPerOp *= 1.5;          // +50% time: regression
  after[0].bytesPerSecond *= 0.6;   // -40% throughput: regression
  after[1].nsPerOp *= 0.5;          // improvement: finding, not regression
  const auto result = obs::diffBenchResults(before, after, {});
  EXPECT_EQ(result.regressions(), 2u);
  EXPECT_GE(result.findings.size(), 3u);
  EXPECT_NE(result.render().find("replay/btio"), std::string::npos);
}

TEST(BenchDiff, ThresholdSuppressesNoise) {
  auto before = obs::parseBenchJson(kBenchA);
  auto after = before;
  after[0].nsPerOp *= 1.05;  // +5% < default 10%
  EXPECT_EQ(obs::diffBenchResults(before, after, {}).regressions(), 0u);
  obs::BenchDiffOptions strict;
  strict.thresholdPct = 1.0;
  EXPECT_EQ(obs::diffBenchResults(before, after, strict).regressions(), 1u);
}

TEST(BenchDiff, MissingResultsAreReportedButNotRegressions) {
  auto before = obs::parseBenchJson(kBenchA);
  auto after = before;
  after.pop_back();
  const auto result = obs::diffBenchResults(before, after, {});
  EXPECT_EQ(result.regressions(), 0u);
  bool sawMissing = false;
  for (const auto& f : result.findings) {
    if (f.kind == obs::BenchDiffFinding::Kind::Missing) sawMissing = true;
  }
  EXPECT_TRUE(sawMissing);
}

TEST(Logger, ParseLevelNamesRoundTrip) {
  for (auto lvl : {obs::LogLevel::Off, obs::LogLevel::Warn,
                   obs::LogLevel::Info, obs::LogLevel::Debug}) {
    EXPECT_EQ(obs::parseLogLevel(obs::logLevelName(lvl)), lvl);
  }
  EXPECT_THROW(obs::parseLogLevel("loud"), std::invalid_argument);
}

}  // namespace
}  // namespace iop
