// Cross-module integration tests: claims that only hold when the whole
// stack — apps, MPI, storage, monitor, tracer, model — cooperates.
#include <gtest/gtest.h>

#include "analysis/runner.hpp"
#include "apps/madbench.hpp"
#include "configs/configs.hpp"
#include "monitor/monitor.hpp"
#include "mpi/runtime.hpp"
#include "trace/tracer.hpp"

namespace iop {
namespace {

TEST(Integration, PhasesAreVisibleAtDeviceLevel) {
  // The paper's Figure 8 claim: the I/O phases identified at library
  // level are reflected at device level.  Classify each monitor sample by
  // the phase whose wall window contains it and check that write phases
  // show write-dominated device traffic and read phases read-dominated.
  auto cfg = configs::makeConfig(configs::ConfigId::B);
  apps::MadbenchParams params;
  params.mount = cfg.mount;
  params.kpix = 8;
  params.busyWorkSeconds = 0.2;

  trace::Tracer tracer("madbench2", 16);
  monitor::DeviceMonitor mon(*cfg.engine, cfg.topology->allDisks(), 1.0);
  mon.start();
  auto opts = cfg.runtimeOptions(16, &tracer);
  opts.onAppComplete = [&mon] { mon.stop(); };
  mpi::Runtime runtime(*cfg.topology, opts);
  runtime.runToCompletion(apps::makeMadbench(params));
  auto model = core::extractModel(tracer.takeData());
  ASSERT_EQ(model.phases().size(), 5u);

  for (const auto& phase : model.phases()) {
    const std::string type = phase.opTypeLabel();
    double read = 0, write = 0;
    int samples = 0;
    for (const auto& sample : mon.samples()) {
      if (sample.time < phase.startTime + 1.0 ||
          sample.time > phase.endTime) {
        continue;
      }
      for (const auto& disk : sample.disks) {
        read += disk.sectorsReadPerSec;
        write += disk.sectorsWrittenPerSec;
      }
      ++samples;
    }
    ASSERT_GT(samples, 0) << "phase " << phase.id;
    if (type == "W") {
      EXPECT_GT(write, read * 2) << "phase " << phase.id;
    } else if (type == "R") {
      EXPECT_GT(read, write * 2) << "phase " << phase.id;
    } else {
      EXPECT_GT(read, 0.0);
      EXPECT_GT(write, 0.0);
    }
  }

  // And the devices saturate during the phases (paper: "about the 100%").
  EXPECT_GT(mon.peakUtilization(), 0.95);
}

TEST(Integration, TickClockIsWallTimeIndependent) {
  // The same application produces identical tick sequences on a fast and
  // a slow configuration, even though wall timings differ — the property
  // that makes the model portable.
  auto traceOn = [](configs::ConfigId id) {
    auto cfg = configs::makeConfig(id);
    apps::MadbenchParams p;
    p.mount = cfg.mount;
    p.kpix = 4;
    p.busyWorkSeconds = 0.01;
    return analysis::runAndTrace(cfg, "madbench2", apps::makeMadbench(p), 8)
        .trace;
  };
  auto fast = traceOn(configs::ConfigId::Finisterrae);
  auto slow = traceOn(configs::ConfigId::B);
  ASSERT_EQ(fast.np, slow.np);
  for (int r = 0; r < fast.np; ++r) {
    const auto& a = fast.perRank[static_cast<std::size_t>(r)];
    const auto& b = slow.perRank[static_cast<std::size_t>(r)];
    ASSERT_EQ(a.size(), b.size());
    bool timingsDiffer = false;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].tick, b[k].tick);
      EXPECT_EQ(a[k].offsetUnits, b[k].offsetUnits);
      if (std::abs(a[k].duration - b[k].duration) > 1e-9) {
        timingsDiffer = true;
      }
    }
    EXPECT_TRUE(timingsDiffer) << "configs should differ in speed";
  }
}

}  // namespace
}  // namespace iop
