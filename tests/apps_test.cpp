#include <gtest/gtest.h>

#include "analysis/runner.hpp"
#include "apps/btio.hpp"
#include "apps/madbench.hpp"
#include "apps/strided_example.hpp"
#include "configs/configs.hpp"
#include "util/units.hpp"

namespace iop::apps {
namespace {

using configs::ConfigId;
using iop::util::GiB;
using iop::util::MiB;

TEST(StridedExample, ReproducesFigure2TraceShape) {
  auto cfg = configs::makeConfig(ConfigId::A);
  StridedExampleParams p;
  p.mount = cfg.mount;
  p.dumps = 4;  // abbreviated
  auto run = analysis::runAndTrace(cfg, "example", makeStridedExample(p), 4);
  const auto& recs = run.trace.perRank[0];
  // Offsets advance by 265302 etypes per dump, as in Figure 2.
  std::vector<trace::Record> writes;
  for (const auto& r : recs) {
    if (trace::isWriteOp(r.op)) writes.push_back(r);
  }
  ASSERT_EQ(writes.size(), 4u);
  EXPECT_EQ(writes[0].op, "MPI_File_write_at_all");
  EXPECT_EQ(writes[0].offsetUnits, 0u);
  EXPECT_EQ(writes[1].offsetUnits, 265302u);
  EXPECT_EQ(writes[2].offsetUnits, 2u * 265302);
  EXPECT_EQ(writes[0].requestBytes, 10612080u);
  // Ticks gap between writes (communication), like 148 -> 269.
  EXPECT_GT(writes[1].tick - writes[0].tick, 1u);
}

TEST(StridedExample, ModelHasPerDumpWritePhasesPlusOneReadPhase) {
  auto cfg = configs::makeConfig(ConfigId::A);
  StridedExampleParams p;
  p.mount = cfg.mount;
  p.dumps = 6;
  auto run = analysis::runAndTrace(cfg, "example", makeStridedExample(p), 4);
  ASSERT_EQ(run.model.phases().size(), 7u);
  EXPECT_EQ(run.model.phases().back().rep, 6u);
  EXPECT_EQ(run.model.phases().back().opTypeLabel(), "R");
  auto meta = run.model.metadataFor(run.model.phases()[0].idF);
  EXPECT_EQ(meta.accessMode, "Strided");
  EXPECT_TRUE(meta.collectiveIo);
  EXPECT_EQ(meta.etypeBytes, 40u);
}

TEST(Madbench, RequestSizeMatchesPaper) {
  MadbenchParams p;
  p.kpix = 8;
  // (8*1024)^2 * 8 / 16 = 32 MB: the paper's 16-process, 8KPIX setup.
  EXPECT_EQ(madbenchRequestSize(p, 16), 32 * MiB);
}

TEST(Madbench, FivePhaseModelWithPaperWeights) {
  auto cfg = configs::makeConfig(ConfigId::A);
  MadbenchParams p;
  p.mount = cfg.mount;
  p.busyWorkSeconds = 0.01;
  auto run = analysis::runAndTrace(cfg, "madbench2", makeMadbench(p), 16);
  const auto& phases = run.model.phases();
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_EQ(phases[0].weightBytes, 4 * GiB);
  EXPECT_EQ(phases[1].weightBytes, 1 * GiB);
  EXPECT_EQ(phases[2].weightBytes, 6 * GiB);
  EXPECT_EQ(phases[3].weightBytes, 1 * GiB);
  EXPECT_EQ(phases[4].weightBytes, 4 * GiB);
  EXPECT_EQ(phases[0].ops[0].offsetFn.render(32 * MiB, 16), "idP*8*32MB");
  auto meta = run.model.metadataFor(phases[0].idF);
  EXPECT_EQ(meta.accessMode, "Sequential");
  EXPECT_EQ(meta.accessType, "Shared");
  EXPECT_FALSE(meta.collectiveIo);
  EXPECT_TRUE(meta.individualPointers);
}

TEST(Madbench, GangModeRunsAndKeepsPhaseStructure) {
  auto cfg = configs::makeConfig(ConfigId::A);
  MadbenchParams p;
  p.mount = cfg.mount;
  p.gangs = 2;
  p.kpix = 2;
  p.busyWorkSeconds = 0.01;
  auto run = analysis::runAndTrace(cfg, "madbench2g", makeMadbench(p), 4);
  EXPECT_EQ(run.model.phases().size(), 5u);
}

TEST(Btio, ClassParametersMatchNpb) {
  EXPECT_EQ(btClassMesh(BtClass::C), 162);
  EXPECT_EQ(btClassMesh(BtClass::D), 408);
  EXPECT_EQ(btClassDumps(BtClass::C), 40);
  EXPECT_EQ(btClassDumps(BtClass::D), 50);
  BtioParams p;
  p.cls = BtClass::C;
  // ~10.6 MB for class C on 16 processes ("request size 10MB").
  const auto rs = btioRequestSize(p, 16);
  EXPECT_NEAR(static_cast<double>(rs), 10.6e6, 0.4e6);
  EXPECT_EQ(rs % 40, 0u);
}

TEST(Btio, FullSubtypeModelMatchesTableXI) {
  auto cfg = configs::makeConfig(ConfigId::A);
  BtioParams p;
  p.mount = cfg.mount;
  p.cls = BtClass::A;  // small mesh for test speed
  p.dumpsOverride = 10;
  auto run = analysis::runAndTrace(cfg, "btio", makeBtio(p), 4);
  const auto& phases = run.model.phases();
  ASSERT_EQ(phases.size(), 11u);
  const auto rs = btioRequestSize(p, 4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(phases[static_cast<std::size_t>(i)].rep, 1u);
    EXPECT_EQ(phases[static_cast<std::size_t>(i)].weightBytes, 4 * rs);
  }
  const auto& fn = phases[0].ops[0].offsetFn;
  EXPECT_TRUE(fn.exact);
  EXPECT_DOUBLE_EQ(fn.aBytes, static_cast<double>(rs));
  EXPECT_DOUBLE_EQ(fn.cBytes, static_cast<double>(rs) * 4);  // rs*np*(ph-1)
  EXPECT_EQ(phases[10].rep, 10u);
  EXPECT_EQ(phases[10].opTypeLabel(), "R");
  auto meta = run.model.metadataFor(phases[0].idF);
  EXPECT_TRUE(meta.collectiveIo);
  EXPECT_TRUE(meta.explicitOffsets);
  EXPECT_EQ(meta.accessMode, "Strided");
}

TEST(Btio, SimpleAndFullSubtypesAgreeOnModelStructure) {
  // BT-IO writes rank-contiguous blocks per dump, so two-phase collective
  // buffering adds a data shuffle without merging anything: FULL pays a
  // bounded overhead over SIMPLE here (collective buffering only wins on
  // fragmented patterns — see mpi_test's strided-view case).  The I/O
  // model must be identical apart from the operation names.
  auto runWith = [](bool full) {
    auto cfg = configs::makeConfig(ConfigId::A);
    BtioParams p;
    p.mount = cfg.mount;
    p.cls = BtClass::A;
    p.dumpsOverride = 5;
    p.fullSubtype = full;
    p.computePerStep = 0.0;
    return analysis::runAndTrace(cfg, "btio", makeBtio(p), 4);
  };
  const auto full = runWith(true);
  const auto simple = runWith(false);
  ASSERT_EQ(full.model.phases().size(), simple.model.phases().size());
  double fullIo = 0, simpleIo = 0;
  for (std::size_t i = 0; i < full.model.phases().size(); ++i) {
    const auto& pf = full.model.phases()[i];
    const auto& ps = simple.model.phases()[i];
    EXPECT_EQ(pf.weightBytes, ps.weightBytes);
    EXPECT_EQ(pf.ops[0].initOffsetBytes, ps.ops[0].initOffsetBytes);
    fullIo += pf.measuredIoTime();
    simpleIo += ps.measuredIoTime();
  }
  EXPECT_TRUE(full.model.metadataFor(1).collectiveIo);
  EXPECT_FALSE(simple.model.metadataFor(1).collectiveIo);
  EXPECT_LT(fullIo, simpleIo * 3.0);  // shuffle overhead is bounded
}

TEST(Btio, SameModelStructureAcrossConfigurations) {
  // The paper's key claim: the I/O model is independent of the subsystem.
  auto modelOn = [](ConfigId id) {
    auto cfg = configs::makeConfig(id);
    BtioParams p;
    p.mount = cfg.mount;
    p.cls = BtClass::A;
    p.dumpsOverride = 8;
    return analysis::runAndTrace(cfg, "btio", makeBtio(p), 4).model;
  };
  auto a = modelOn(ConfigId::A);
  auto b = modelOn(ConfigId::B);
  ASSERT_EQ(a.phases().size(), b.phases().size());
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    EXPECT_EQ(a.phases()[i].weightBytes, b.phases()[i].weightBytes);
    EXPECT_EQ(a.phases()[i].rep, b.phases()[i].rep);
    EXPECT_EQ(a.phases()[i].ops[0].initOffsetBytes,
              b.phases()[i].ops[0].initOffsetBytes);
  }
}

}  // namespace
}  // namespace iop::apps
