#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "apps/btio.hpp"
#include "configs/configfile.hpp"
#include "ior/ior.hpp"
#include "storage/filesystem.hpp"
#include "util/units.hpp"

namespace iop::configs {
namespace {

using iop::util::MiB;

const char* kSample = R"(
# a PVFS-like custom cluster
name test-cluster
compute 4 gbe
ionode nas gbe
ionode ion0 gbe
ionode ion1 gbe
server nas raid5 5 sata stripe=256K cache=2G
server ion0 disk ide writethrough
server ion1 ssd read=800 write=600 channels=8
mount /nfs nfs nas rpc=256K
mount /par striped ion0,ion1 mds=nas stripe=64K count=0
default-mount /par
hints cb_nodes=2 cb_buffer=8M
)";

TEST(ConfigFile, ParsesFullSample) {
  auto cfg = parseClusterConfig(kSample);
  EXPECT_EQ(cfg.name, "test-cluster");
  EXPECT_EQ(cfg.computeNodes.size(), 4u);
  EXPECT_EQ(cfg.mount, "/par");
  EXPECT_EQ(cfg.hints.cbNodes, 2);
  EXPECT_EQ(cfg.hints.cbBufferSize, 8 * MiB);
  EXPECT_EQ(cfg.topology->fs("/par").dataServers().size(), 2u);
  EXPECT_EQ(cfg.topology->fs("/nfs").dataServers().size(), 1u);
  // nas RAID5 contributes 5 disks; ion0 one; ion1 eight SSD channels.
  EXPECT_EQ(cfg.topology->allDisks().size(), 5u + 1 + 8);
}

TEST(ConfigFile, DefaultMountIsFirstMountWhenUnspecified) {
  auto cfg = parseClusterConfig(R"(
compute 2 gbe
ionode nas gbe
server nas disk sata
mount /only nfs nas
)");
  EXPECT_EQ(cfg.mount, "/only");
}

TEST(ConfigFile, RunnableEndToEnd) {
  auto cfg = parseClusterConfig(kSample);
  ior::IorParams p;
  p.mount = cfg.mount;
  p.np = 4;
  p.blockSize = 16 * MiB;
  p.transferSize = 2 * MiB;
  auto result = ior::runIor(cfg, p);
  EXPECT_GT(result.writeBandwidth, 0.0);
  EXPECT_GT(result.readBandwidth, 0.0);
}

TEST(ConfigFile, UsableAsReplayTarget) {
  // Characterize on paper config A, estimate on the custom cluster.
  auto home = makeConfig(ConfigId::A);
  apps::BtioParams app;
  app.mount = home.mount;
  app.cls = apps::BtClass::A;
  app.dumpsOverride = 4;
  auto run = analysis::runAndTrace(home, "btio", apps::makeBtio(app), 4);
  analysis::Replayer replayer(
      [] { return parseClusterConfig(kSample); }, "/par");
  auto estimate = analysis::estimateIoTime(run.model, replayer);
  EXPECT_GT(estimate.totalTimeSec, 0.0);
}

TEST(ConfigFile, ReportsLineNumbersOnErrors) {
  try {
    parseClusterConfig("compute 2 gbe\nbogus directive\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigFile, RejectsStructuralMistakes) {
  // server on unknown node
  EXPECT_THROW(parseClusterConfig("compute 2 gbe\nserver nas disk sata\n"),
               std::invalid_argument);
  // mount referencing server-less node
  EXPECT_THROW(parseClusterConfig(
                   "compute 2 gbe\nionode nas gbe\nmount /x nfs nas\n"),
               std::invalid_argument);
  // no compute nodes
  EXPECT_THROW(parseClusterConfig(
                   "ionode nas gbe\nserver nas disk sata\n"
                   "mount /x nfs nas\n"),
               std::invalid_argument);
  // no mount
  EXPECT_THROW(parseClusterConfig("compute 2 gbe\n"),
               std::invalid_argument);
  // duplicate server
  EXPECT_THROW(parseClusterConfig(
                   "compute 1 gbe\nionode nas gbe\nserver nas disk sata\n"
                   "server nas disk sata\nmount /x nfs nas\n"),
               std::invalid_argument);
  // unknown link/disk class
  EXPECT_THROW(parseClusterConfig("compute 2 token-ring\n"),
               std::invalid_argument);
  EXPECT_THROW(parseClusterConfig(
                   "compute 1 gbe\nionode nas gbe\nserver nas disk mfm\n"
                   "mount /x nfs nas\n"),
               std::invalid_argument);
}

TEST(ConfigFile, LoadFromDiskMatchesParse) {
  const auto path =
      std::filesystem::temp_directory_path() / "iop_cluster.conf";
  {
    std::ofstream out(path);
    out << kSample;
  }
  auto cfg = loadClusterConfig(path);
  std::filesystem::remove(path);
  EXPECT_EQ(cfg.name, "test-cluster");
  EXPECT_THROW(loadClusterConfig("/no/such/file.conf"),
               std::invalid_argument);
}

TEST(ConfigFile, WritethroughFlagApplies) {
  auto cfg = parseClusterConfig(R"(
compute 1 gbe
ionode ion gbe
server ion disk sata writethrough
mount /x nfs ion
)");
  const auto& servers = cfg.topology->ioServers();
  ASSERT_EQ(servers.size(), 1u);
  EXPECT_TRUE(servers[0]->cache().params().writeThrough);
}

}  // namespace
}  // namespace iop::configs
