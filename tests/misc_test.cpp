// Assorted smaller behaviours not covered by the per-module suites.
#include <gtest/gtest.h>

#include "analysis/evaluate.hpp"
#include "configs/configs.hpp"
#include "core/iomodel.hpp"
#include "mpi/comm.hpp"
#include "mpi/runtime.hpp"
#include "storage/filesystem.hpp"
#include "trace/tracer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace iop {
namespace {

using iop::util::MiB;

TEST(CommCost, LargerBroadcastsTakeLonger) {
  auto timeBcast = [](std::uint64_t bytes) {
    auto cfg = configs::makeConfig(configs::ConfigId::A);
    mpi::Runtime rt(*cfg.topology, cfg.runtimeOptions(8));
    return rt.runToCompletion([bytes](mpi::Rank& r) -> sim::Task<void> {
      co_await r.bcast(bytes);
    });
  };
  EXPECT_GT(timeBcast(64 * MiB), timeBcast(64));
}

TEST(CommCost, AllreduceCostsMoreThanBcast) {
  auto cfg = configs::makeConfig(configs::ConfigId::A);
  mpi::Runtime rt(*cfg.topology, cfg.runtimeOptions(8));
  double bcastEnd = 0, allreduceEnd = 0;
  rt.runToCompletion([&](mpi::Rank& r) -> sim::Task<void> {
    const double t0 = r.engine().now();
    co_await r.bcast(1 * MiB);
    const double t1 = r.engine().now();
    co_await r.allreduce(1 * MiB);
    const double t2 = r.engine().now();
    if (r.id() == 0) {
      bcastEnd = t1 - t0;
      allreduceEnd = t2 - t1;
    }
  });
  EXPECT_GT(allreduceEnd, bcastEnd);
}

TEST(CommCost, BarrierWaitsButCostsLittle) {
  auto cfg = configs::makeConfig(configs::ConfigId::A);
  mpi::Runtime rt(*cfg.topology, cfg.runtimeOptions(4));
  double elapsed = rt.runToCompletion([](mpi::Rank& r) -> sim::Task<void> {
    co_await r.barrier();
  });
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 0.01);
}

TEST(TableRender, RowsLongerThanHeaderArePadded) {
  util::Table t;
  t.setHeader({"a", "b"});
  t.addRow({"1"});  // shorter than header
  auto text = t.render();
  EXPECT_NE(text.find("| 1 |"), std::string::npos);
}

TEST(ModelSeries, MaxPointsTruncates) {
  trace::TraceData data;
  data.appName = "series";
  data.np = 2;
  data.perRank.resize(2);
  data.commEventsPerRank.assign(2, 0);
  trace::FileMeta meta;
  meta.fileId = 1;
  meta.np = 2;
  data.files.push_back(meta);
  for (int r = 0; r < 2; ++r) {
    for (int i = 0; i < 10; ++i) {
      trace::Record rec;
      rec.rank = r;
      rec.fileId = 1;
      rec.op = "MPI_File_write";
      rec.offsetUnits = static_cast<std::uint64_t>(i) * 100;
      rec.tick = static_cast<std::uint64_t>(i) + 1;
      rec.requestBytes = 100;
      data.perRank[static_cast<std::size_t>(r)].push_back(rec);
    }
  }
  auto model = core::extractModel(data);
  auto series = model.renderGlobalPatternSeries(5);
  int lines = 0;
  for (char c : series) lines += c == '\n';
  EXPECT_EQ(lines, 6);  // header + 5 points
}

TEST(ModelMetadata, UnknownFileGivesDefaults) {
  core::IOModel model("x", 2, {}, {});
  auto meta = model.metadataFor(42);
  EXPECT_EQ(meta.accessMode, "Sequential");
  EXPECT_TRUE(meta.blockingIo);
}

TEST(Evaluate, WriteReadPhasePeakIsTheAverage) {
  // Build a minimal W-R phase and check eq. 5's denominator choice.
  core::Phase phase;
  phase.id = 1;
  phase.ranks = {0};
  phase.rep = 1;
  core::PhaseOp w;
  w.op = "MPI_File_write";
  w.rsBytes = MiB;
  core::PhaseOp r;
  r.op = "MPI_File_read";
  r.rsBytes = MiB;
  phase.ops = {w, r};
  phase.weightBytes = 2 * MiB;
  phase.ioUnionSeconds = 1.0;
  core::IOModel model("x", 1, {}, {phase});
  auto rows = analysis::systemUsage(model, 100.0, 50.0);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].peakBandwidth, 75.0);
  EXPECT_EQ(rows[0].opsLabel, "2 W-R");
}

TEST(PhaseSplit, ZeroGapSplitsEveryRepetition) {
  // maxIntraPhaseTickGap = 0: even back-to-back repetitions separate.
  trace::TraceData data;
  data.appName = "splitall";
  data.np = 1;
  data.perRank.resize(1);
  data.commEventsPerRank.assign(1, 0);
  trace::FileMeta meta;
  meta.fileId = 1;
  meta.np = 1;
  data.files.push_back(meta);
  for (int i = 0; i < 5; ++i) {
    trace::Record rec;
    rec.rank = 0;
    rec.fileId = 1;
    rec.op = "MPI_File_write";
    rec.offsetUnits = static_cast<std::uint64_t>(i) * 10;
    rec.tick = static_cast<std::uint64_t>(i) + 1;
    rec.requestBytes = 10;
    data.perRank[0].push_back(rec);
  }
  core::PhaseDetectionOptions opt;
  opt.maxIntraPhaseTickGap = 0;
  EXPECT_EQ(core::detectPhases(data, opt).size(), 5u);
  EXPECT_EQ(core::detectPhases(data).size(), 1u);
}

TEST(FsDescribe, MentionsTopologyPieces) {
  auto a = configs::makeConfig(configs::ConfigId::A);
  auto text = a.topology->fs(a.mount).describe();
  EXPECT_NE(text.find("nfs"), std::string::npos);
  EXPECT_NE(text.find("raid5"), std::string::npos);
  auto f = configs::makeConfig(configs::ConfigId::Finisterrae);
  auto ltext = f.topology->fs(f.mount).describe();
  EXPECT_NE(ltext.find("striped(18 servers"), std::string::npos);
  EXPECT_NE(ltext.find("count=1"), std::string::npos);
}

TEST(Runtime, RejectsInvalidOptions) {
  auto cfg = configs::makeConfig(configs::ConfigId::A);
  mpi::RuntimeOptions opts;
  opts.np = 0;
  opts.computeNodes = cfg.computeNodes;
  EXPECT_THROW(mpi::Runtime(*cfg.topology, opts), std::invalid_argument);
  opts.np = 2;
  opts.computeNodes.clear();
  EXPECT_THROW(mpi::Runtime(*cfg.topology, opts), std::invalid_argument);
}

TEST(Runtime, FileReopenedWithDifferentAccessTypeRejected) {
  auto cfg = configs::makeConfig(configs::ConfigId::A);
  mpi::Runtime rt(*cfg.topology, cfg.runtimeOptions(1));
  EXPECT_THROW(
      rt.runToCompletion([&](mpi::Rank& r) -> sim::Task<void> {
        auto a = co_await r.open("/raid/raid5", "x", mpi::AccessType::Shared);
        auto b = co_await r.open("/raid/raid5", "x", mpi::AccessType::Unique);
      }),
      std::logic_error);
}

}  // namespace
}  // namespace iop
