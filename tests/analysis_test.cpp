#include <gtest/gtest.h>

#include "analysis/evaluate.hpp"
#include "analysis/peaks.hpp"
#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "apps/btio.hpp"
#include "apps/madbench.hpp"
#include "configs/configs.hpp"
#include "util/units.hpp"

namespace iop::analysis {
namespace {

using apps::BtClass;
using apps::BtioParams;
using configs::ConfigId;
using iop::util::MiB;

BtioParams smallBtio(const std::string& mount) {
  BtioParams p;
  p.mount = mount;
  p.cls = BtClass::A;
  p.dumpsOverride = 8;
  p.computePerStep = 0.01;
  return p;
}

core::IOModel btioModelOn(ConfigId id, int np) {
  auto cfg = configs::makeConfig(id);
  return runAndTrace(cfg, "btio", apps::makeBtio(smallBtio(cfg.mount)), np)
      .model;
}

TEST(Replay, PlanFollowsSectionIIIB) {
  auto model = btioModelOn(ConfigId::A, 4);
  const auto& writePhase = model.phases().front();
  auto entry = planReplay(model, writePhase, "/raid/raid5");
  EXPECT_EQ(entry.params.segments, 1);                        // s = 1
  EXPECT_EQ(entry.params.np, 4);                              // NP = np
  EXPECT_EQ(entry.params.transferSize,
            writePhase.ops[0].rsBytes);                       // t = rs
  EXPECT_EQ(entry.params.blockSize,
            writePhase.rep * writePhase.ops[0].rsBytes);      // b = rep*rs
  EXPECT_TRUE(entry.params.collective);                       // -c
  EXPECT_FALSE(entry.params.uniqueFilePerProc);
  EXPECT_TRUE(entry.accessModeFallback);  // strided -> sequential
  EXPECT_TRUE(entry.hasWrite);
  EXPECT_FALSE(entry.hasRead);
}

TEST(Replay, CacheCollapsesIdenticalPhases) {
  auto model = btioModelOn(ConfigId::A, 4);
  Replayer replayer([] { return configs::makeConfig(ConfigId::A); },
                    "/raid/raid5");
  auto estimate = estimateIoTime(model, replayer);
  EXPECT_EQ(estimate.phases.size(), model.phases().size());
  // 8 identical write phases + 1 read phase -> 2 benchmark runs.
  EXPECT_EQ(replayer.benchmarkRuns(), 2u);
}

TEST(Replay, EstimateCloseToMeasuredOnNetworkBoundConfig) {
  // The paper's validation: estimate on the target via IOR only, then
  // compare against the application actually running there.  Like the
  // paper's configuration C, the target is network-bound, which is where
  // the IOR replay is most faithful.
  auto model = btioModelOn(ConfigId::A, 4);  // characterization machine
  Replayer replayer([] { return configs::makeConfig(ConfigId::C); },
                    "/home");
  auto estimate = estimateIoTime(model, replayer);
  auto measured = btioModelOn(ConfigId::C, 4);
  auto rows = compareEstimate(estimate, measured);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_GT(row.timeCH, 0.0);
    EXPECT_GT(row.timeMD, 0.0);
  }
  // The write group replays faithfully.  (The read group of this
  // deliberately tiny class-A file fits in the server cache, so its
  // measured reads are warm while IOR's are cold — the full-scale class-D
  // benches, where the file dwarfs the cache, show the paper's <10% read
  // errors too.)
  EXPECT_LT(rows[0].errorPct, 15.0) << rows[0].label();
}

TEST(Replay, LayoutMismatchShowsUpOnDiskBoundConfig) {
  // On a device-bound configuration (B's JBOD disks) IOR's segmented
  // block layout differs from BT-IO's dump-major layout, so the replay
  // error grows — the replay-fidelity limitation the paper's Section V
  // discusses.  The estimate must still be within the same magnitude.
  auto model = btioModelOn(ConfigId::A, 4);
  Replayer replayer([] { return configs::makeConfig(ConfigId::B); },
                    "/mnt/pvfs2");
  auto estimate = estimateIoTime(model, replayer);
  auto measured = btioModelOn(ConfigId::B, 4);
  auto rows = compareEstimate(estimate, measured);
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_LT(row.errorPct, 100.0) << row.label();
  }
}

TEST(Estimate, FamilyRowsGroupConsecutivePhases) {
  auto model = btioModelOn(ConfigId::A, 4);
  Replayer replayer([] { return configs::makeConfig(ConfigId::A); },
                    "/raid/raid5");
  auto estimate = estimateIoTime(model, replayer);
  auto rows = estimate.familyRows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].firstPhase, 1);
  EXPECT_EQ(rows[0].lastPhase, 8);
  EXPECT_EQ(rows[1].firstPhase, 9);
  EXPECT_EQ(rows[1].lastPhase, 9);
  EXPECT_NEAR(estimate.totalTimeSec, rows[0].timeCH + rows[1].timeCH, 1e-9);
}

TEST(Evaluate, RelativeErrorFormula) {
  EXPECT_DOUBLE_EQ(relativeErrorPct(90, 100), 10.0);
  EXPECT_DOUBLE_EQ(relativeErrorPct(110, 100), 10.0);
  EXPECT_DOUBLE_EQ(relativeErrorPct(100, 0), 0.0);
}

TEST(Evaluate, CompareRejectsMismatchedStructures) {
  auto modelA = btioModelOn(ConfigId::A, 4);
  Replayer replayer([] { return configs::makeConfig(ConfigId::A); },
                    "/raid/raid5");
  auto estimate = estimateIoTime(modelA, replayer);
  // Measured model with a different phase count.
  auto cfg = configs::makeConfig(ConfigId::A);
  auto p = smallBtio(cfg.mount);
  p.dumpsOverride = 3;
  auto other = runAndTrace(cfg, "btio", apps::makeBtio(p), 4).model;
  EXPECT_THROW(compareEstimate(estimate, other), std::runtime_error);
}

TEST(Evaluate, UsageRowsMatchPhaseLabels) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::MadbenchParams mp;
  mp.mount = cfg.mount;
  mp.kpix = 4;
  mp.busyWorkSeconds = 0.01;
  auto run = runAndTrace(cfg, "madbench2", apps::makeMadbench(mp), 16);
  auto rows = systemUsage(run.model, util::fromMiBs(400),
                          util::fromMiBs(350));
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].opsLabel, "128 W");
  EXPECT_EQ(rows[2].opsLabel, "192 W-R");
  for (const auto& row : rows) {
    EXPECT_GT(row.usagePct, 0.0);
    EXPECT_LT(row.usagePct, 100.0);
  }
}

TEST(Evaluate, SelectionPicksSmallestTime) {
  SelectionCandidate a{"slow", {}};
  a.estimate.totalTimeSec = 100;
  SelectionCandidate b{"fast", {}};
  b.estimate.totalTimeSec = 42;
  std::vector<SelectionCandidate> candidates{a, b};
  const auto* best = selectConfiguration(candidates);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->name, "fast");
  EXPECT_EQ(selectConfiguration({}), nullptr);
}

TEST(Peaks, SingleServerEqualsEq3MultiServerSumsEq4) {
  iozone::IozoneParams quick;
  quick.recordSizes = {1 * MiB};
  quick.patterns = {iozone::Pattern::SequentialWrite,
                    iozone::Pattern::SequentialRead};
  auto cfgA = configs::makeConfig(ConfigId::A);
  auto peakA = measurePeaks(cfgA, quick);
  EXPECT_EQ(peakA.perServer.size(), 1u);
  EXPECT_NEAR(peakA.writePeak, peakA.perServer[0].writePeak, 1.0);

  auto cfgB = configs::makeConfig(ConfigId::B);
  auto peakB = measurePeaks(cfgB, quick);
  EXPECT_EQ(peakB.perServer.size(), 3u);
  double sum = 0;
  for (const auto& s : peakB.perServer) sum += s.writePeak;
  EXPECT_NEAR(peakB.writePeak, sum, 1.0);
}

TEST(Peaks, ConfigAPeaksNearPaperValues) {
  // Paper Table IX: BW_PK ~400 MB/s write, ~350 MB/s read on config A.
  iozone::IozoneParams quick;
  quick.recordSizes = {1 * MiB, 4 * MiB};
  auto cfg = configs::makeConfig(ConfigId::A);
  auto peaks = measurePeaks(cfg, quick);
  EXPECT_GT(util::toMiBs(peaks.writePeak), 300.0);
  EXPECT_LT(util::toMiBs(peaks.writePeak), 480.0);
  EXPECT_GT(util::toMiBs(peaks.readPeak), 280.0);
  EXPECT_LT(util::toMiBs(peaks.readPeak), 480.0);
}

TEST(Runner, ModelRoundTripsThroughDiskAndStaysUsable) {
  // Characterize once, save the model, load it elsewhere, estimate: the
  // full offline workflow of the paper.
  auto model = btioModelOn(ConfigId::A, 4);
  const auto path =
      std::filesystem::temp_directory_path() / "btio_workflow.model";
  model.save(path);
  auto loaded = core::IOModel::load(path);
  std::filesystem::remove(path);
  Replayer replayer([] { return configs::makeConfig(ConfigId::B); },
                    "/mnt/pvfs2");
  auto estimate = estimateIoTime(loaded, replayer);
  EXPECT_GT(estimate.totalTimeSec, 0.0);
  EXPECT_EQ(estimate.phases.size(), model.phases().size());
}

}  // namespace
}  // namespace iop::analysis
