#include <gtest/gtest.h>

#include "configs/configs.hpp"
#include "ior/ior.hpp"
#include "storage/filesystem.hpp"
#include "util/units.hpp"

namespace iop::configs {
namespace {

using iop::util::MiB;

TEST(Configs, AllFourBuildAndDescribe) {
  for (auto id : {ConfigId::A, ConfigId::B, ConfigId::C,
                  ConfigId::Finisterrae}) {
    auto cfg = makeConfig(id);
    EXPECT_FALSE(cfg.computeNodes.empty());
    EXPECT_NO_THROW(cfg.topology->fs(cfg.mount));
    EXPECT_FALSE(describeConfig(id).empty());
    EXPECT_STREQ(configName(id), cfg.name.c_str());
  }
}

TEST(Configs, MountPointsMatchPaper) {
  EXPECT_EQ(makeConfig(ConfigId::A).mount, "/raid/raid5");
  EXPECT_EQ(makeConfig(ConfigId::B).mount, "/mnt/pvfs2");
  EXPECT_EQ(makeConfig(ConfigId::C).mount, "/home");
  EXPECT_EQ(makeConfig(ConfigId::Finisterrae).mount, "homesfs");
}

TEST(Configs, ServerCountsMatchPaper) {
  auto a = makeConfig(ConfigId::A);
  EXPECT_EQ(a.topology->fs(a.mount).dataServers().size(), 1u);
  auto b = makeConfig(ConfigId::B);
  EXPECT_EQ(b.topology->fs(b.mount).dataServers().size(), 3u);
  auto f = makeConfig(ConfigId::Finisterrae);
  EXPECT_EQ(f.topology->fs(f.mount).dataServers().size(), 18u);
}

TEST(Configs, DisksMatchPaperInventory) {
  auto a = makeConfig(ConfigId::A);
  EXPECT_EQ(a.topology->allDisks().size(), 5u);  // RAID5, 5 disks
  auto b = makeConfig(ConfigId::B);
  EXPECT_EQ(b.topology->allDisks().size(), 3u);  // 3 JBOD nodes, 1 each
}

TEST(Configs, FinisterraeFasterThanConfigCForLargeSequentialIo) {
  // Table XII's selection outcome must be reproducible at the raw-IOR
  // level: Lustre over Infiniband beats single-server NFS over GbE.
  auto run = [](ConfigId id) {
    auto cfg = makeConfig(id);
    ior::IorParams p;
    p.mount = cfg.mount;
    p.np = 16;
    p.blockSize = 64 * MiB;
    p.transferSize = 4 * MiB;
    p.collective = true;
    return ior::runIor(cfg, p);
  };
  auto c = run(ConfigId::C);
  auto f = run(ConfigId::Finisterrae);
  EXPECT_GT(f.writeBandwidth, c.writeBandwidth);
  EXPECT_GT(f.readBandwidth, c.readBandwidth);
}

TEST(Configs, FreshInstancesAreIndependent) {
  auto one = makeConfig(ConfigId::A);
  auto two = makeConfig(ConfigId::A);
  EXPECT_NE(one.engine.get(), two.engine.get());
  EXPECT_DOUBLE_EQ(two.engine->now(), 0.0);
}

}  // namespace
}  // namespace iop::configs
