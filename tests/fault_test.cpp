// iop::fault — plan parsing with file:line diagnostics, retry/backoff
// schedules, seeded determinism of injected fault histories, the
// zero-perturbation gate for healthy runs, and the failover-vs-phase-error
// recovery matrix on a striped configuration.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/degraded.hpp"
#include "analysis/runner.hpp"
#include "apps/registry.hpp"
#include "configs/configs.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "mpi/runtime.hpp"
#include "storage/faults.hpp"

namespace {

using namespace iop;

// ------------------------------------------------------------- helpers

/// Characterize the cheap strided example app once; every degraded-mode
/// test replays this model.
const core::IOModel& exampleModel() {
  static const core::IOModel model = [] {
    auto cluster = configs::makeConfig(configs::ConfigId::A);
    return analysis::runAndTrace(cluster, "example",
                                 apps::makeApp("example", cluster.mount), 4)
        .model;
  }();
  return model;
}

analysis::ConfigBuilder builderFor(configs::ConfigId id) {
  return [id] { return configs::makeConfig(id); };
}

/// Parse must fail and the diagnostic must carry every `needles` fragment
/// (source:line plus a human-readable cause).
void expectParseError(const std::string& text,
                      const std::vector<std::string>& needles) {
  try {
    fault::parseFaultPlan(text, "plan");
    FAIL() << "expected std::invalid_argument for: " << text;
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "diagnostic '" << what << "' lacks '" << needle << "'";
    }
  }
}

/// Event log minus its header line (the header embeds the seed, so two
/// seeds trivially differ there; the interesting question is whether the
/// *histories* differ).
std::string eventLogBody(const std::string& log) {
  const auto nl = log.find('\n');
  return nl == std::string::npos ? std::string() : log.substr(nl + 1);
}

// ------------------------------------------------------- plan parsing

TEST(FaultPlan, ParsesTheDocumentedGrammar) {
  const auto plan = fault::parseFaultPlan(
      "# full grammar tour\n"
      "policy timeout=50ms retries=3 backoff=1ms max-backoff=16ms "
      "jitter=0.5 failover=off\n"
      "disk d0 transient-error p=0.25 from=2s until=10s\n"
      "disk * slow x2.5 from=500ms\n"
      "node n1 crash at=5s restart=+2s\n"
      "net straggler rank=3 x4 from=1s\n",
      "plan");
  EXPECT_DOUBLE_EQ(plan.policy.timeoutSec, 0.05);
  EXPECT_EQ(plan.policy.maxRetries, 3);
  EXPECT_DOUBLE_EQ(plan.policy.backoffBaseSec, 1e-3);
  EXPECT_DOUBLE_EQ(plan.policy.backoffMaxSec, 16e-3);
  EXPECT_DOUBLE_EQ(plan.policy.jitter, 0.5);
  EXPECT_FALSE(plan.policy.failover);

  ASSERT_EQ(plan.rules.size(), 4u);
  const auto& eio = plan.rules[0];
  EXPECT_EQ(eio.kind, fault::FaultRule::Kind::TransientError);
  EXPECT_EQ(eio.selector, "d0");
  EXPECT_DOUBLE_EQ(eio.probability, 0.25);
  EXPECT_DOUBLE_EQ(eio.from, 2.0);
  EXPECT_DOUBLE_EQ(eio.until, 10.0);
  EXPECT_EQ(eio.line, 3);

  const auto& slow = plan.rules[1];
  EXPECT_EQ(slow.kind, fault::FaultRule::Kind::Slow);
  EXPECT_EQ(slow.selector, "*");
  EXPECT_DOUBLE_EQ(slow.factor, 2.5);
  EXPECT_DOUBLE_EQ(slow.from, 0.5);
  EXPECT_TRUE(slow.activeAt(1e9));  // forever

  // `crash at=5s restart=+2s` is sugar for a down window [5, 7).
  const auto& crash = plan.rules[2];
  EXPECT_EQ(crash.target, fault::FaultRule::Target::Node);
  EXPECT_EQ(crash.kind, fault::FaultRule::Kind::Down);
  EXPECT_DOUBLE_EQ(crash.from, 5.0);
  EXPECT_DOUBLE_EQ(crash.until, 7.0);

  const auto& straggler = plan.rules[3];
  EXPECT_EQ(straggler.target, fault::FaultRule::Target::NetRank);
  EXPECT_EQ(straggler.rank, 3);
  EXPECT_DOUBLE_EQ(straggler.factor, 4.0);
}

TEST(FaultPlan, CanonicalTextIgnoresCommentsAndWhitespace) {
  const auto a = fault::parseFaultPlan(
      "disk d0 slow x2\nnet straggler rank=1 x4\n", "a");
  const auto b = fault::parseFaultPlan(
      "# a comment\n\n  disk   d0   slow   x2  # trailing\n"
      "net straggler rank=1 x4\n",
      "b");
  EXPECT_EQ(a.canonicalText(), b.canonicalText());
}

TEST(FaultPlan, CanonicalTextIsTheDocumentedGolden) {
  // Cache keys and RNG seeding hash this rendering: changing it silently
  // invalidates every faulted store, so pin the exact bytes.
  const auto plan = fault::parseFaultPlan("disk d0 slow x2\n", "golden");
  EXPECT_EQ(plan.canonicalText(),
            "faultplan v1\n"
            "policy timeout=0.5s retries=8 backoff=0.002s max-backoff=0.5s "
            "jitter=0.25 failover=on\n"
            "disk d0 slow x2 from=0s until=forever\n");
}

TEST(FaultPlan, DiagnosticsCarrySourceAndLine) {
  expectParseError("disk d0 explode\n", {"plan:1:", "unknown fault"});
  expectParseError("\ndisk d0 transient-error p=1.5\n",
                   {"plan:2:", "p must be in [0, 1]"});
  expectParseError("disk d0 down from=5s until=2s\n",
                   {"plan:1:", "empty fault window"});
  expectParseError("node n0 crash restart=+2s\n",
                   {"plan:1:", "crash needs at="});
  expectParseError("node n0 crash at=5s restart=2s\n",
                   {"plan:1:", "restart before the crash"});
  expectParseError("net straggler x4\n", {"plan:1:", "rank"});
  expectParseError("policy jitter=1.5\n",
                   {"plan:1:", "jitter must be in [0, 1)"});
  expectParseError("disk d0 slow\n", {"plan:1:", "factor"});
  expectParseError("weather d0 down\n", {"plan:1:", "unknown directive"});
}

TEST(FaultInjector, AttachRejectsUnmatchedSelectors) {
  const auto plan =
      fault::parseFaultPlan("disk no-such-disk down from=0s\n", "typo");
  auto config = configs::makeConfig(configs::ConfigId::A);
  EXPECT_THROW(fault::installFaults(config, plan, 1),
               std::invalid_argument);
}

// ----------------------------------------------------- backoff schedule

TEST(Backoff, DoublesFromBaseAndCaps) {
  storage::RetryPolicy policy;
  policy.backoffBaseSec = 1e-3;
  policy.backoffMaxSec = 8e-3;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(storage::backoffDelay(policy, 0, 0.5), 1e-3);
  EXPECT_DOUBLE_EQ(storage::backoffDelay(policy, 1, 0.5), 2e-3);
  EXPECT_DOUBLE_EQ(storage::backoffDelay(policy, 2, 0.5), 4e-3);
  EXPECT_DOUBLE_EQ(storage::backoffDelay(policy, 3, 0.5), 8e-3);
  EXPECT_DOUBLE_EQ(storage::backoffDelay(policy, 4, 0.5), 8e-3);
  // Deep retry counts must not overflow the doubling into nonsense.
  EXPECT_DOUBLE_EQ(storage::backoffDelay(policy, 200, 0.5), 8e-3);
}

TEST(Backoff, JitterStaysWithinTheConfiguredBand) {
  storage::RetryPolicy policy;
  policy.backoffBaseSec = 1e-3;
  policy.backoffMaxSec = 1.0;
  policy.jitter = 0.25;
  for (int attempt = 0; attempt < 6; ++attempt) {
    const double center = storage::backoffDelay(policy, attempt, 0.5);
    for (double draw : {0.0, 0.1, 0.5, 0.9, 0.999}) {
      const double delay = storage::backoffDelay(policy, attempt, draw);
      EXPECT_GE(delay, center * (1.0 - policy.jitter) * 0.999999);
      EXPECT_LE(delay, center * (1.0 + policy.jitter) * 1.000001);
    }
    // The extremes of the draw map to the extremes of the band.
    EXPECT_LT(storage::backoffDelay(policy, attempt, 0.0), center);
    EXPECT_GT(storage::backoffDelay(policy, attempt, 0.999), center);
  }
}

// --------------------------------------------------------- determinism

constexpr const char* kFlakyPlanText =
    "policy timeout=20ms retries=6 backoff=1ms max-backoff=32ms "
    "jitter=0.25\n"
    "disk * transient-error p=0.2\n";

TEST(FaultInjector, SamePlanAndSeedReplayIsBitIdentical) {
  const auto plan = fault::parseFaultPlan(kFlakyPlanText, "flaky");
  const auto builder = builderFor(configs::ConfigId::A);
  const auto a =
      analysis::estimateDegraded(exampleModel(), builder, plan, {7});
  const auto b =
      analysis::estimateDegraded(exampleModel(), builder, plan, {7});
  ASSERT_EQ(a.replicas.size(), 1u);
  ASSERT_EQ(b.replicas.size(), 1u);
  ASSERT_TRUE(a.replicas[0].ok);
  EXPECT_GT(a.replicas[0].retries, 0u);  // the plan actually fired
  EXPECT_EQ(a.replicas[0].timeIo, b.replicas[0].timeIo);  // bitwise
  EXPECT_EQ(a.replicas[0].eventLog, b.replicas[0].eventLog);
  EXPECT_EQ(a.replicas[0].retries, b.replicas[0].retries);
  EXPECT_EQ(a.replicas[0].stallSeconds, b.replicas[0].stallSeconds);
}

TEST(FaultInjector, DifferentSeedsDrawDifferentHistories) {
  const auto plan = fault::parseFaultPlan(kFlakyPlanText, "flaky");
  const auto builder = builderFor(configs::ConfigId::A);
  const auto a =
      analysis::estimateDegraded(exampleModel(), builder, plan, {7});
  const auto c =
      analysis::estimateDegraded(exampleModel(), builder, plan, {8});
  ASSERT_TRUE(a.replicas[0].ok);
  ASSERT_TRUE(c.replicas[0].ok);
  EXPECT_NE(eventLogBody(a.replicas[0].eventLog),
            eventLogBody(c.replicas[0].eventLog));
}

TEST(FaultInjector, SeedsAggregateIntoMinMedianMax) {
  const auto plan = fault::parseFaultPlan(kFlakyPlanText, "flaky");
  const auto estimate = analysis::estimateDegraded(
      exampleModel(), builderFor(configs::ConfigId::A), plan, {1, 2, 3});
  EXPECT_EQ(estimate.okReplicas, 3u);
  EXPECT_LE(estimate.minTimeIo, estimate.medianTimeIo);
  EXPECT_LE(estimate.medianTimeIo, estimate.maxTimeIo);
  EXPECT_EQ(estimate.phases.size(), exampleModel().phases().size());
}

TEST(MedianOf, HandlesOddEvenAndEmpty) {
  EXPECT_DOUBLE_EQ(analysis::medianOf({}), 0.0);
  EXPECT_DOUBLE_EQ(analysis::medianOf({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(analysis::medianOf({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(analysis::medianOf({4.0, 1.0, 3.0, 2.0}), 2.5);
}

// ------------------------------------------------ zero-perturbation gate

/// Run the example app on a fresh config A, optionally under `plan`, and
/// report (makespan, engine event-order digest).
std::pair<double, std::uint64_t> runExample(const fault::FaultPlan* plan,
                                            std::uint64_t seed) {
  auto config = configs::makeConfig(configs::ConfigId::A);
  std::shared_ptr<fault::FaultInjector> injector;
  if (plan != nullptr) {
    injector = fault::installFaults(config, *plan, seed);
  }
  mpi::Runtime runtime(*config.topology, config.runtimeOptions(4));
  const double makespan =
      runtime.runToCompletion(apps::makeApp("example", config.mount));
  return {makespan, config.engine->orderDigest()};
}

TEST(FaultInjector, EmptyPlanIsANoOp) {
  const fault::FaultPlan empty;
  auto config = configs::makeConfig(configs::ConfigId::A);
  EXPECT_EQ(fault::installFaults(config, empty, 1), nullptr);
  EXPECT_EQ(config.faults, nullptr);
}

TEST(FaultInjector, InertPlanPerturbsNothing) {
  // A plan whose rules can never fire (p=0) must leave the simulated
  // event order — not just the makespan — bit-identical to a healthy run.
  const auto baseline = runExample(nullptr, 0);
  const auto inert = fault::parseFaultPlan(
      "disk * transient-error p=0\n", "inert");
  const auto gated = runExample(&inert, 1);
  EXPECT_EQ(baseline.first, gated.first);    // makespan, bitwise
  EXPECT_EQ(baseline.second, gated.second);  // dispatch order digest
}

// ------------------------------------------- failover-vs-error matrix

TEST(FaultRecovery, FailoverReroutesAroundADeadServer) {
  // Config B stripes over three single-disk servers; killing the first
  // forever forces every slice it owns through retry exhaustion and onto
  // the survivors.
  const auto plan = fault::parseFaultPlan(
      "policy timeout=5ms retries=1 backoff=1ms max-backoff=4ms "
      "jitter=0 failover=on\n"
      "disk d0 down from=0s\n",
      "dead-d0");
  const auto estimate = analysis::estimateDegraded(
      exampleModel(), builderFor(configs::ConfigId::B), plan, {1});
  ASSERT_EQ(estimate.replicas.size(), 1u);
  const auto& replica = estimate.replicas[0];
  EXPECT_TRUE(replica.ok) << replica.error;
  EXPECT_GT(replica.failovers, 0u);
  EXPECT_GT(replica.stallSeconds, 0.0);
  EXPECT_GT(estimate.medianTimeIo, 0.0);
}

TEST(FaultRecovery, NoFailoverEscalatesToPhaseError) {
  const auto plan = fault::parseFaultPlan(
      "policy timeout=5ms retries=1 backoff=1ms max-backoff=4ms "
      "jitter=0 failover=off\n"
      "disk d0 down from=0s\n",
      "dead-d0-strict");
  const auto estimate = analysis::estimateDegraded(
      exampleModel(), builderFor(configs::ConfigId::B), plan, {1});
  ASSERT_EQ(estimate.replicas.size(), 1u);
  const auto& replica = estimate.replicas[0];
  EXPECT_FALSE(replica.ok);
  EXPECT_FALSE(replica.error.empty());
  EXPECT_GT(replica.exhausted, 0u);
  EXPECT_EQ(replica.failovers, 0u);
  EXPECT_TRUE(estimate.allFailed());
}

}  // namespace
