// Property-based tests (parameterized gtest): invariants that must hold
// for *any* workload, checked over randomized inputs.
//
//  * Phase detection: conservation of bytes, SPMD coverage, exactness of
//    fitted offset functions, ordering, and save/load round-trips — over
//    randomly generated application schedules.
//  * IOR: accounting and bandwidth sanity over the full parameter cross
//    product (config x collective x unique).
//  * Storage: payload conservation through cache + array onto disks.
//  * Determinism: identical seeds give identical simulations.
#include <gtest/gtest.h>

#include <set>

#include "analysis/synthesize.hpp"
#include "configs/configs.hpp"
#include "core/iomodel.hpp"
#include "ior/ior.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "storage/blockdev.hpp"
#include "storage/cache.hpp"
#include "trace/tracefile.hpp"
#include "trace/tracer.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace iop {
namespace {

using iop::util::KiB;
using iop::util::MiB;

// ---------------------------------------------------------------- phases

/// Generate a random SPMD application trace: every rank executes the same
/// random sequence of bursts; each burst is a repeated op with a
/// rank-linear base offset, either tick-contiguous or separated by
/// communication events.
trace::TraceData randomTrace(std::uint64_t seed) {
  util::Rng rng(seed);
  const int np = 2 + static_cast<int>(rng.below(7));  // 2..8 ranks
  const int bursts = 1 + static_cast<int>(rng.below(6));

  struct Burst {
    const char* op;
    std::uint64_t rs;
    std::uint64_t rep;
    std::uint64_t rankStride;  // multiples of rs between rank bases
    bool contiguousTicks;
    std::uint64_t base;
  };
  static const char* kOps[] = {"MPI_File_write", "MPI_File_read",
                               "MPI_File_write_at_all",
                               "MPI_File_read_at_all"};
  static const std::uint64_t kSizes[] = {64 * KiB, 1 * MiB, 10 * MiB};

  std::vector<Burst> plan;
  std::uint64_t base = 0;
  for (int b = 0; b < bursts; ++b) {
    Burst burst;
    burst.op = kOps[rng.below(4)];
    burst.rs = kSizes[rng.below(3)];
    burst.rep = 1 + rng.below(9);
    burst.rankStride = rng.below(3) * 4;  // 0, 4 or 8 request sizes
    burst.contiguousTicks = rng.below(2) == 0;
    burst.base = base;
    base += burst.rs * burst.rep * static_cast<std::uint64_t>(np) * 16;
    plan.push_back(burst);
  }

  trace::TraceData data;
  data.appName = "random-" + std::to_string(seed);
  data.np = np;
  data.perRank.resize(static_cast<std::size_t>(np));
  data.commEventsPerRank.assign(static_cast<std::size_t>(np), 0);
  trace::FileMeta meta;
  meta.fileId = 1;
  meta.path = "random.dat";
  meta.np = np;
  data.files.push_back(meta);

  for (int r = 0; r < np; ++r) {
    std::uint64_t tick = 1;
    double time = 0;
    auto& recs = data.perRank[static_cast<std::size_t>(r)];
    for (const auto& burst : plan) {
      const std::uint64_t rankBase =
          burst.base +
          burst.rankStride * burst.rs * static_cast<std::uint64_t>(r);
      for (std::uint64_t m = 0; m < burst.rep; ++m) {
        trace::Record rec;
        rec.rank = r;
        rec.fileId = 1;
        rec.op = burst.op;
        rec.offsetUnits = rankBase + m * burst.rs;
        rec.tick = tick;
        rec.requestBytes = burst.rs;
        rec.time = time;
        rec.duration = 0.05;
        recs.push_back(std::move(rec));
        tick += burst.contiguousTicks ? 1 : 7;  // 7: comm in between
        time += 0.1;
      }
      tick += 3;  // bursts always separated by some MPI activity
      time += 1.0;
    }
  }
  return data;
}

class PhaseProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhaseProperties, WeightsConserveTracedBytes) {
  auto data = randomTrace(GetParam());
  auto model = core::extractModel(data);
  EXPECT_EQ(model.totalWeightBytes(), data.totalBytes());
}

TEST_P(PhaseProperties, PhasesPartitionEachRanksRecords) {
  // A phase may cover a subset of the ranks (the paper: "a number of
  // processes of the parallel application") — e.g. when one rank's
  // adjacent bursts coincidentally continue the same stride and merge.
  // But collectively the phases must account for every rank's traced
  // operations exactly once.
  auto data = randomTrace(GetParam());
  auto model = core::extractModel(data);
  std::vector<std::uint64_t> opsPerRank(
      static_cast<std::size_t>(data.np), 0);
  for (const auto& phase : model.phases()) {
    std::set<int> ranks(phase.ranks.begin(), phase.ranks.end());
    EXPECT_EQ(ranks.size(), phase.ranks.size()) << "phase " << phase.id;
    EXPECT_FALSE(phase.ranks.empty());
    for (int r : phase.ranks) {
      opsPerRank[static_cast<std::size_t>(r)] +=
          phase.rep * phase.ops.size();
    }
  }
  for (int r = 0; r < data.np; ++r) {
    EXPECT_EQ(opsPerRank[static_cast<std::size_t>(r)],
              data.perRank[static_cast<std::size_t>(r)].size())
        << "rank " << r;
  }
}

TEST_P(PhaseProperties, ExactOffsetFunctionsReproduceOffsets) {
  auto data = randomTrace(GetParam());
  auto model = core::extractModel(data);
  for (const auto& phase : model.phases()) {
    for (const auto& op : phase.ops) {
      if (!op.offsetFn.exact) continue;
      for (std::size_t r = 0; r < phase.ranks.size(); ++r) {
        EXPECT_EQ(op.offsetFn.eval(phase.ranks[r], phase.familyIndex),
                  op.initOffsetBytes[r])
            << "phase " << phase.id << " rank " << phase.ranks[r];
      }
    }
  }
}

TEST_P(PhaseProperties, RankLinearOffsetsAreAlwaysFittedExactly) {
  // The generator only produces offsets linear in idP, so every op's
  // offset function must come out exact.
  auto data = randomTrace(GetParam());
  auto model = core::extractModel(data);
  for (const auto& phase : model.phases()) {
    for (const auto& op : phase.ops) {
      EXPECT_TRUE(op.offsetFn.exact) << "phase " << phase.id;
    }
  }
}

TEST_P(PhaseProperties, PhasesOrderedByFirstTick) {
  auto data = randomTrace(GetParam());
  auto model = core::extractModel(data);
  for (std::size_t i = 1; i < model.phases().size(); ++i) {
    EXPECT_LE(model.phases()[i - 1].firstTick,
              model.phases()[i].firstTick);
    EXPECT_EQ(model.phases()[i].id,
              model.phases()[i - 1].id + 1);
  }
}

TEST_P(PhaseProperties, SaveLoadRoundTripIsLossless) {
  auto data = randomTrace(GetParam());
  auto model = core::extractModel(data);
  const auto path = std::filesystem::temp_directory_path() /
                    ("prop_" + std::to_string(GetParam()) + ".model");
  model.save(path);
  auto loaded = core::IOModel::load(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.phases().size(), model.phases().size());
  for (std::size_t i = 0; i < model.phases().size(); ++i) {
    const auto& a = model.phases()[i];
    const auto& b = loaded.phases()[i];
    EXPECT_EQ(a.weightBytes, b.weightBytes);
    EXPECT_EQ(a.rep, b.rep);
    EXPECT_EQ(a.familyId, b.familyId);
    EXPECT_EQ(a.familyIndex, b.familyIndex);
    EXPECT_NEAR(a.measuredIoTime(), b.measuredIoTime(), 1e-6);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (std::size_t j = 0; j < a.ops.size(); ++j) {
      EXPECT_EQ(a.ops[j].op, b.ops[j].op);
      EXPECT_EQ(a.ops[j].rsBytes, b.ops[j].rsBytes);
      EXPECT_EQ(a.ops[j].dispBytes, b.ops[j].dispBytes);
      EXPECT_EQ(a.ops[j].initOffsetBytes, b.ops[j].initOffsetBytes);
    }
  }
}

TEST_P(PhaseProperties, TraceFileRoundTripPreservesModel) {
  auto data = randomTrace(GetParam());
  const auto dir = std::filesystem::temp_directory_path() /
                   ("prop_traces_" + std::to_string(GetParam()));
  trace::writeTraces(dir, data);
  auto reloaded = trace::readTraces(dir, data.appName);
  std::filesystem::remove_all(dir);
  auto a = core::extractModel(data);
  auto b = core::extractModel(reloaded);
  ASSERT_EQ(a.phases().size(), b.phases().size());
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    EXPECT_EQ(a.phases()[i].weightBytes, b.phases()[i].weightBytes);
    EXPECT_EQ(a.phases()[i].firstTick, b.phases()[i].firstTick);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSchedules, PhaseProperties,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Synthesis round trip: model -> synthetic app -> traced model must be
/// structurally identical.  The generator above uses collective ops too;
/// when coincidental merges produce a partial collective phase the model
/// is not synthesizable, which makeSyntheticApp reports — skip those.
class SynthesizeProperties
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesizeProperties, ModelRoundTripsThroughSyntheticApp) {
  auto data = randomTrace(GetParam());
  auto model = core::extractModel(data);
  mpi::Runtime::RankMain main;
  try {
    auto cfg = configs::makeConfig(configs::ConfigId::A);
    main = analysis::makeSyntheticApp(model, cfg.mount);
    trace::Tracer tracer("synth", model.np());
    auto opts = cfg.runtimeOptions(model.np(), &tracer);
    mpi::Runtime runtime(*cfg.topology, opts);
    runtime.runToCompletion(std::move(main));
    auto replayed = core::extractModel(tracer.takeData());
    ASSERT_EQ(replayed.phases().size(), model.phases().size());
    for (std::size_t i = 0; i < model.phases().size(); ++i) {
      const auto& a = model.phases()[i];
      const auto& b = replayed.phases()[i];
      EXPECT_EQ(a.weightBytes, b.weightBytes) << "phase " << a.id;
      EXPECT_EQ(a.rep, b.rep) << "phase " << a.id;
      EXPECT_EQ(a.ranks, b.ranks) << "phase " << a.id;
      ASSERT_EQ(a.ops.size(), b.ops.size());
      for (std::size_t j = 0; j < a.ops.size(); ++j) {
        EXPECT_EQ(a.ops[j].op, b.ops[j].op);
        EXPECT_EQ(a.ops[j].initOffsetBytes, b.ops[j].initOffsetBytes);
      }
    }
  } catch (const std::invalid_argument&) {
    GTEST_SKIP() << "model not synthesizable (partial collective phase)";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesizeProperties,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------------------- IOR

struct IorCase {
  configs::ConfigId config;
  bool collective;
  bool unique;
};

class IorProperties : public ::testing::TestWithParam<IorCase> {};

TEST_P(IorProperties, AccountingAndBandwidthSanity) {
  const auto& param = GetParam();
  auto cfg = configs::makeConfig(param.config);
  ior::IorParams p;
  p.mount = cfg.mount;
  p.np = 4;
  p.blockSize = 16 * MiB;
  p.transferSize = 2 * MiB;
  p.collective = param.collective;
  p.uniqueFilePerProc = param.unique;
  auto result = ior::runIor(cfg, p);
  EXPECT_EQ(result.totalBytes, 4ull * 16 * MiB);
  EXPECT_GT(result.writeBandwidth, util::fromMiBs(1));
  EXPECT_LT(result.writeBandwidth, util::fromMiBs(10000));
  EXPECT_GT(result.readBandwidth, util::fromMiBs(1));
  EXPECT_LT(result.readBandwidth, util::fromMiBs(10000));
  EXPECT_GT(result.writeTimeSec, 0.0);
  EXPECT_GT(result.readTimeSec, 0.0);
}

TEST_P(IorProperties, Deterministic) {
  const auto& param = GetParam();
  auto run = [&param] {
    auto cfg = configs::makeConfig(param.config);
    ior::IorParams p;
    p.mount = cfg.mount;
    p.np = 4;
    p.blockSize = 8 * MiB;
    p.transferSize = 1 * MiB;
    p.collective = param.collective;
    p.uniqueFilePerProc = param.unique;
    p.accessMode = ior::AccessMode::Random;
    return ior::runIor(cfg, p);
  };
  auto a = run();
  auto b = run();
  EXPECT_DOUBLE_EQ(a.writeBandwidth, b.writeBandwidth);
  EXPECT_DOUBLE_EQ(a.readBandwidth, b.readBandwidth);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, IorProperties,
    ::testing::Values(IorCase{configs::ConfigId::A, false, false},
                      IorCase{configs::ConfigId::A, true, false},
                      IorCase{configs::ConfigId::A, false, true},
                      IorCase{configs::ConfigId::B, false, false},
                      IorCase{configs::ConfigId::B, true, true},
                      IorCase{configs::ConfigId::C, true, false},
                      IorCase{configs::ConfigId::Finisterrae, true, false},
                      IorCase{configs::ConfigId::Finisterrae, false,
                              true}));

// --------------------------------------------------------------- storage

class ConservationProperties
    : public ::testing::TestWithParam<configs::ConfigId> {};

TEST_P(ConservationProperties, DisksReceiveAtLeastThePayload) {
  // Everything a workload writes must reach the member disks once caches
  // drain; parity/RMW may amplify but never lose bytes.
  auto cfg = configs::makeConfig(GetParam());
  ior::IorParams p;
  p.mount = cfg.mount;
  p.np = 4;
  p.blockSize = 32 * MiB;
  p.transferSize = 4 * MiB;
  p.doRead = false;
  auto result = ior::runIor(cfg, p);
  // runIor shuts the topology down; flushers drained before run() ended.
  std::uint64_t onDisk = 0;
  auto& fs = cfg.topology->fs(cfg.mount);
  for (auto* server : fs.dataServers()) {
    std::vector<storage::Disk*> disks;
    server->device().collectDisks(disks);
    for (auto* d : disks) onDisk += d->counters().bytesWritten;
  }
  EXPECT_GE(onDisk, result.totalBytes);
  EXPECT_LE(onDisk, result.totalBytes * 3);  // bounded amplification
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConservationProperties,
                         ::testing::Values(configs::ConfigId::A,
                                           configs::ConfigId::B,
                                           configs::ConfigId::C,
                                           configs::ConfigId::Finisterrae));

// ------------------------------------------------------------- filesystems

/// NFS aggregate bandwidth must not grow past the single server's link as
/// clients are added (it is the bottleneck), while a striped filesystem
/// over several servers keeps scaling until its servers saturate.
class ScalingProperties : public ::testing::TestWithParam<int> {};

TEST_P(ScalingProperties, NfsSaturatesAtOneLink) {
  const int np = GetParam();
  auto cfg = configs::makeConfig(configs::ConfigId::A);
  ior::IorParams p;
  p.mount = cfg.mount;
  p.np = np;
  p.blockSize = 32 * MiB;
  p.transferSize = 4 * MiB;
  p.doRead = false;
  auto r = ior::runIor(cfg, p);
  EXPECT_LT(r.writeBandwidth, 117.0e6 * 1.15) << "np=" << np;
}

TEST_P(ScalingProperties, SeekBoundWritesDegradeGracefullyUnderSharing) {
  // Configuration B's write-through JBOD is seek-bound: interleaved
  // streams from more clients cost seeks, so the aggregate must not
  // exceed the single-stream rate — but the degradation is bounded (the
  // elevator at the disk keeps some locality).
  const int np = GetParam();
  auto measure = [](int clients) {
    auto cfg = configs::makeConfig(configs::ConfigId::B);
    ior::IorParams p;
    p.mount = cfg.mount;
    p.np = clients;
    p.blockSize = 32 * MiB;
    p.transferSize = 4 * MiB;
    p.doRead = false;
    return ior::runIor(cfg, p).writeBandwidth;
  };
  if (np <= 1) GTEST_SKIP();
  const double solo = measure(1);
  const double shared = measure(np);
  EXPECT_LE(shared, solo * 1.1) << "np=" << np;
  EXPECT_GE(shared, solo * 0.3) << "np=" << np;
}

INSTANTIATE_TEST_SUITE_P(ClientCounts, ScalingProperties,
                         ::testing::Values(1, 2, 4, 8, 16));

// ----------------------------------------------------------- determinism

class DeterminismProperties
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperties, SameSeedSameSimulation) {
  auto run = [](std::uint64_t seed) {
    sim::Engine eng(seed);
    storage::SingleDisk disk(eng, storage::DiskParams{});
    storage::CacheParams cp;
    cp.sizeBytes = 32 * MiB;
    storage::PageCache cache(eng, disk, cp);
    eng.spawn([](sim::Engine& e, storage::PageCache& c)
                  -> sim::Task<void> {
      for (int i = 0; i < 50; ++i) {
        const auto offset = e.rng().below(1ULL << 30);
        co_await c.write(offset, 256 * KiB);
        co_await c.read(e.rng().below(1ULL << 30), 128 * KiB);
      }
      c.shutdown();
    }(eng, cache));
    eng.run();
    return std::make_tuple(eng.now(), eng.eventsDispatched(),
                           disk.disk().counters().bytesWritten,
                           disk.disk().counters().bytesRead);
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperties,
                         ::testing::Values(1u, 7u, 42u, 1234567u));

// ----------------------------------------------------------- interval set

class IntervalProperties : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(IntervalProperties, MatchesBitmapReference) {
  util::IntervalSet set;
  std::vector<bool> ref(2048, false);
  std::uint64_t state = GetParam();
  for (int i = 0; i < 300; ++i) {
    std::uint64_t a = util::splitmix64(state) % 2048;
    std::uint64_t b = util::splitmix64(state) % 2048;
    if (a > b) std::swap(a, b);
    if (util::splitmix64(state) % 4 == 0) {
      set.erase(a, b);
      for (std::uint64_t k = a; k < b; ++k) ref[k] = false;
    } else {
      set.insert(a, b);
      for (std::uint64_t k = a; k < b; ++k) ref[k] = true;
    }
  }
  std::uint64_t expected = 0;
  for (bool v : ref) expected += v;
  ASSERT_EQ(set.totalBytes(), expected);
  // gaps() and coveredBytes() agree with the bitmap on random probes.
  for (int probe = 0; probe < 50; ++probe) {
    std::uint64_t a = util::splitmix64(state) % 2048;
    std::uint64_t b = util::splitmix64(state) % 2048;
    if (a > b) std::swap(a, b);
    std::uint64_t covered = 0;
    for (std::uint64_t k = a; k < b; ++k) covered += ref[k];
    EXPECT_EQ(set.coveredBytes(a, b), covered);
    std::uint64_t gapBytes = 0;
    for (const auto& [gb, ge] : set.gaps(a, b)) gapBytes += ge - gb;
    EXPECT_EQ(gapBytes, (b - a) - covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalProperties,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace iop
