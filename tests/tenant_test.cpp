// iop::tenant — spec parsing with a hostile-input corpus, canonical-text
// stability, seeded arrival determinism, the solo-equals-single-app
// bit-exactness contract, weighted-fair-queueing QoS ordering, burst-
// buffer staging accounting, and the sweep's tenant axis (grid fan-out,
// cache-key backward compatibility, store round-trip).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/runner.hpp"
#include "analysis/synthesize.hpp"
#include "apps/registry.hpp"
#include "configs/configs.hpp"
#include "mpi/runtime.hpp"
#include "sweep/campaign.hpp"
#include "sweep/executor.hpp"
#include "sweep/store.hpp"
#include "tenant/cosched.hpp"
#include "tenant/spec.hpp"

namespace {

using namespace iop;

// ------------------------------------------------------------- helpers

analysis::ConfigBuilder builderFor(configs::ConfigId id) {
  return [id] { return configs::makeConfig(id); };
}

/// Characterize the cheap strided example app once per np.
const core::IOModel& exampleModel(int np) {
  static std::map<int, core::IOModel> cache;
  auto it = cache.find(np);
  if (it == cache.end()) {
    auto cluster = configs::makeConfig(configs::ConfigId::A);
    it = cache
             .emplace(np, analysis::runAndTrace(
                              cluster, "example",
                              apps::makeApp("example", cluster.mount), np)
                              .model)
             .first;
  }
  return it->second;
}

/// Parse must fail with std::invalid_argument carrying every needle.
void expectParseError(const std::string& text,
                      const std::vector<std::string>& needles) {
  try {
    tenant::parseTenantSpec(text, "spec");
    FAIL() << "expected std::invalid_argument for: " << text;
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "diagnostic '" << what << "' lacks '" << needle << "'";
    }
  }
}

/// Scratch directory for files the campaign axis needs on disk.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("iop_tenant_test_" + name)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }

  std::filesystem::path write(const std::string& file,
                              const std::string& text) const {
    const auto p = path_ / file;
    std::ofstream out(p, std::ios::binary);
    out << text;
    return p;
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

const char* kFullGrammar =
    "# full grammar tour\n"
    "arbiter slots=2\n"
    "job fg app=example np=4 weight=2 arrival=0s\n"
    "job ckpt app=example np=2 arrival=periodic:start=200ms,every=1s,"
    "count=3 repeat=2\n"
    "job bg model=saved.model weight=0.5 arrival=poisson:rate=2,count=1 "
    "burst-buffer=on\n";

// ------------------------------------------------------- spec parsing

TEST(TenantSpec, ParsesTheDocumentedGrammar) {
  const auto spec = tenant::parseTenantSpec(kFullGrammar, "spec");
  EXPECT_EQ(spec.slots, 2);
  ASSERT_EQ(spec.jobs.size(), 3u);

  const auto& fg = spec.jobs[0];
  EXPECT_EQ(fg.id, "fg");
  EXPECT_EQ(fg.app, "example");
  EXPECT_EQ(fg.np, 4);
  EXPECT_DOUBLE_EQ(fg.weight, 2.0);
  EXPECT_EQ(fg.arrival.kind, tenant::ArrivalSpec::Kind::Fixed);
  EXPECT_DOUBLE_EQ(fg.arrival.start, 0.0);

  const auto& ckpt = spec.jobs[1];
  EXPECT_EQ(ckpt.arrival.kind, tenant::ArrivalSpec::Kind::Periodic);
  EXPECT_DOUBLE_EQ(ckpt.arrival.start, 0.2);
  EXPECT_DOUBLE_EQ(ckpt.arrival.every, 1.0);
  EXPECT_EQ(ckpt.arrival.count, 3);
  EXPECT_EQ(ckpt.repeat, 2);

  const auto& bg = spec.jobs[2];
  EXPECT_EQ(bg.modelPath, "saved.model");
  EXPECT_DOUBLE_EQ(bg.weight, 0.5);
  EXPECT_EQ(bg.arrival.kind, tenant::ArrivalSpec::Kind::Poisson);
  EXPECT_DOUBLE_EQ(bg.arrival.rate, 2.0);
  EXPECT_TRUE(bg.burstBuffer);
}

TEST(TenantSpec, CanonicalTextIsAFixedPoint) {
  const auto spec = tenant::parseTenantSpec(kFullGrammar, "spec");
  const std::string canonical = spec.canonicalText();
  // Re-parsing the canonical body (minus its version header) must
  // canonicalize to the same bytes — the determinism anchor the run seed
  // is mixed from.
  const auto body = canonical.substr(canonical.find('\n') + 1);
  const auto reparsed = tenant::parseTenantSpec(body, "spec");
  EXPECT_EQ(reparsed.canonicalText(), canonical);
}

TEST(TenantSpec, CanonicalTextIgnoresCommentsAndWhitespace) {
  const auto a = tenant::parseTenantSpec(
      "arbiter slots=1\njob a app=example np=2 arrival=0s\n", "a");
  const auto b = tenant::parseTenantSpec(
      "# comment\n\n  arbiter   slots=1\r\n"
      "  job   a   app=example   np=2   arrival=0s  # trailing\n",
      "b");
  EXPECT_EQ(a.canonicalText(), b.canonicalText());
}

TEST(TenantSpec, HostileInputsFailCleanly) {
  // Structural errors, each with its file:line diagnostic.
  expectParseError("job\n", {"spec:1", "model=<path>|app=<name>"});
  expectParseError("job a\n", {"model=<path>|app=<name>"});
  expectParseError("job a weight=2\n", {"exactly one"});
  expectParseError("job a app=example model=m.model\n", {"exactly one"});
  expectParseError("job a model=m.model app-x=1\n", {"app-*"});
  expectParseError("job a app=example nope=1\n", {"unknown job option"});
  // '#' opens a comment, so an id carrying one truncates the line and the
  // remainder fails loudly instead of silently renaming the job.
  expectParseError("job a#1 app=example\n", {"spec:1"});
  expectParseError("job a app=example\njob a app=example\n",
                   {"spec:2", "duplicate job id"});
  expectParseError("launch a app=example\n", {"unknown directive"});
  expectParseError("arbiter slots=0\n", {"slots"});
  expectParseError("arbiter slots=99999\n", {"slots"});
  expectParseError("arbiter turbo=on\n", {"unknown arbiter knob"});

  // Absurd numbers hit the sanity caps instead of allocating for hours.
  expectParseError("job a app=example np=123456789\n", {"np"});
  expectParseError("job a app=example repeat=99999999\n", {"repeat"});
  expectParseError(
      "job a app=example arrival=periodic:every=1s,count=99999999\n",
      {"count"});
  expectParseError("job a app=example weight=0\n", {"weight"});
  expectParseError("job a app=example weight=nan\n", {"weight"});
  expectParseError("job a app=example arrival=-5s\n", {">= 0"});
  expectParseError("job a app=example arrival=poisson:rate=0,count=1\n",
                   {"rate"});
  expectParseError("job a app=example arrival=periodic:start=0s\n",
                   {"every"});
  expectParseError("job a app=example arrival=warp:x=1\n",
                   {"unknown arrival process"});

  // A job flood stops at the cap.
  std::string flood;
  for (int i = 0; i < 250; ++i) {
    flood += "job j" + std::to_string(i) + " app=example\n";
  }
  expectParseError(flood, {"too many jobs"});
}

TEST(TenantSpec, TruncationsAndNulBytesNeverCrash) {
  const std::string full(kFullGrammar);
  // Every prefix must either parse or throw std::invalid_argument.
  for (std::size_t len = 0; len <= full.size(); ++len) {
    try {
      tenant::parseTenantSpec(full.substr(0, len), "spec");
    } catch (const std::invalid_argument&) {
      // fine — clean rejection
    }
  }
  // NUL bytes injected at every position: same contract.
  for (std::size_t at = 0; at < full.size(); at += 7) {
    std::string mutated = full;
    mutated[at] = '\0';
    try {
      tenant::parseTenantSpec(mutated, "spec");
    } catch (const std::invalid_argument&) {
    }
  }
}

// --------------------------------------------------- run determinism

TEST(TenantRun, SameSeedIsExactlyReproducible) {
  const auto spec = tenant::parseTenantSpec(
      "job a app=example np=2 arrival=poisson:rate=1,count=2\n"
      "job b app=example np=2 weight=2 arrival=0s\n",
      "spec");
  const auto builder = builderFor(configs::ConfigId::B);
  const auto r1 = tenant::runTenant(spec, builder, 5);
  const auto r2 = tenant::runTenant(spec, builder, 5);
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.jain, r2.jain);
  ASSERT_EQ(r1.jobs.size(), r2.jobs.size());
  for (std::size_t j = 0; j < r1.jobs.size(); ++j) {
    EXPECT_EQ(r1.jobs[j].arrivals, r2.jobs[j].arrivals);
    EXPECT_EQ(r1.jobs[j].contendedTimeIo, r2.jobs[j].contendedTimeIo);
    EXPECT_EQ(r1.jobs[j].waitSeconds, r2.jobs[j].waitSeconds);
  }

  // A different seed draws different Poisson arrivals.
  const auto r3 = tenant::runTenant(spec, builder, 6);
  EXPECT_NE(r1.jobs[0].arrivals, r3.jobs[0].arrivals);
}

TEST(TenantRun, OneJobSpecMatchesSingleAppReplayBitExact) {
  const auto spec = tenant::parseTenantSpec(
      "job only app=example np=4 arrival=0s\n", "spec");
  const auto builder = builderFor(configs::ConfigId::B);
  const auto result = tenant::runTenant(spec, builder, 42);

  // The direct single-app path: characterize, then replay synthetically
  // on a fresh instance of the same configuration.
  const core::IOModel& model = exampleModel(4);
  auto fresh = builderFor(configs::ConfigId::B)();
  analysis::PhaseClock clock;
  mpi::Runtime runtime(*fresh.topology, fresh.runtimeOptions(model.np()));
  const double expected = runtime.runToCompletion(
      analysis::makeSyntheticApp(model, fresh.mount, &clock));

  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_EQ(result.jobs[0].contendedTimeIo, expected);  // bit-exact
  EXPECT_EQ(result.jobs[0].soloTimeIo, expected);
  EXPECT_DOUBLE_EQ(result.jobs[0].slowdown, 1.0);
  EXPECT_DOUBLE_EQ(result.jain, 1.0);
  EXPECT_EQ(result.makespan, expected);
}

TEST(TenantRun, ContentionSlowsEveryoneAndWeightsOrderTheDamage) {
  const auto spec = tenant::parseTenantSpec(
      "job heavy app=example np=2 weight=4 arrival=0s\n"
      "job light app=example np=2 weight=0.25 arrival=0s\n",
      "spec");
  const auto result =
      tenant::runTenant(spec, builderFor(configs::ConfigId::B), 7);
  ASSERT_EQ(result.jobs.size(), 2u);
  const auto& heavy = result.jobs[0];
  const auto& light = result.jobs[1];

  // Contended never beats solo, and the QoS weight decides who hurts.
  EXPECT_GE(heavy.contendedTimeIo, heavy.soloTimeIo);
  EXPECT_GE(light.contendedTimeIo, light.soloTimeIo);
  EXPECT_LE(heavy.slowdown, light.slowdown);
  EXPECT_GT(result.jain, 0.0);
  EXPECT_LE(result.jain, 1.0);

  // The interference matrix is n x n and the victims actually waited.
  ASSERT_EQ(result.interference.size(), 2u);
  ASSERT_EQ(result.interference[0].size(), 2u);
  EXPECT_GT(light.waitSeconds + heavy.waitSeconds, 0.0);
}

TEST(TenantRun, BurstBufferAbsorbsAndDrainsTheStagedWrites) {
  const auto spec = tenant::parseTenantSpec(
      "job bb app=example np=2 arrival=0s burst-buffer=on\n"
      "job other app=example np=2 arrival=0s\n",
      "spec");
  const auto result =
      tenant::runTenant(spec, builderFor(configs::ConfigId::B), 3);
  const auto& bb = result.jobs[0];
  EXPECT_TRUE(bb.burstBuffer);
  EXPECT_GT(bb.bbAbsorbedBytes, 0u);
  // Every absorbed byte reaches the shared store by the end of the run.
  EXPECT_EQ(bb.bbDrainedBytes, bb.bbAbsorbedBytes);
  EXPECT_FALSE(result.jobs[1].burstBuffer);
  EXPECT_EQ(result.jobs[1].bbAbsorbedBytes, 0u);
}

// ------------------------------------------------- sweep tenant axis

TEST(TenantAxis, CampaignParsesTenantDirectives) {
  ScratchDir dir("campaign");
  const auto tspec =
      dir.write("bg.tenant", "job bg app=example np=2 arrival=0s\n");
  const std::string text = "name t\napp example np=2\nconfig B\n"
                           "tenantspec none\n"
                           "tenantspec file=" + tspec.string() + "\n"
                           "tenant-seeds 2\n";
  const auto spec = sweep::parseCampaign(text, dir.path());
  EXPECT_TRUE(spec.hasTenantAxis());
  ASSERT_EQ(spec.tenants.size(), 2u);
  EXPECT_TRUE(spec.tenants[0].none());
  EXPECT_EQ(spec.tenants[1].label, "bg");
  EXPECT_EQ(spec.tenantSeeds, 2);
  EXPECT_NE(spec.canonicalText().find("tenantspec"), std::string::npos);

  // A campaign without the axis canonicalizes with no tenant lines — the
  // store-compat contract.
  const auto plain =
      sweep::parseCampaign("app example np=2\nconfig B\n", dir.path());
  EXPECT_FALSE(plain.hasTenantAxis());
  EXPECT_EQ(plain.canonicalText().find("tenant"), std::string::npos);
}

TEST(TenantAxis, CellKeysStayBackwardCompatible) {
  // Untenanted keys are byte-identical with and without the trailing
  // tenant parameters — pre-tenant stores keep hitting.
  EXPECT_EQ(sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "plan-a", 1),
            sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "plan-a", 1, "", 0));
  const std::string base =
      sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "", 0, "tenant-a", 1);
  EXPECT_EQ(base,
            sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "", 0, "tenant-a", 1));
  EXPECT_NE(base,
            sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "", 0, "tenant-b", 1));
  EXPECT_NE(base,
            sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "", 0, "tenant-a", 2));
  EXPECT_NE(base, sweep::cellKey("est/1", "m", "c", 1.0, 1.0));
  // A composed fault plan changes the key even at tenant-seed parity.
  EXPECT_NE(base, sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "plan-a", 0,
                                 "tenant-a", 1));
}

TEST(TenantAxis, PlanFansOutAndEvaluatesTenantedCells) {
  ScratchDir dir("plan");
  exampleModel(2).save(dir.path() / "example.model");
  const auto tspec =
      dir.write("bg.tenant", "job bg app=example np=2 arrival=0s\n");
  const auto campaignSpec = sweep::parseCampaign(
      "model example.model\nconfig B\n"
      "tenantspec none\n"
      "tenantspec file=" + tspec.string() + "\n"
      "tenant-seeds 2\n",
      dir.path());
  const auto campaign = sweep::resolveCampaign(campaignSpec);
  const auto cells = campaign.planCells();
  ASSERT_EQ(cells.size(), 3u);  // 1 untenanted + 2 tenant seeds
  EXPECT_FALSE(cells[0].tenanted());
  EXPECT_TRUE(cells[1].tenanted());
  EXPECT_EQ(cells[1].tenantSeed, 1u);
  EXPECT_EQ(cells[2].tenantSeed, 2u);
  EXPECT_NE(cells[1].key, cells[2].key);
  EXPECT_NE(campaign.cellTitle(cells[1]).find("tenant=bg"),
            std::string::npos);

  // The tenanted cell co-schedules the model as foreground "cell" and its
  // contended Time_io is never better than the uncontended estimate's
  // solo replay.
  const auto result = sweep::evaluateCell(campaign, cells[1]);
  EXPECT_EQ(result.estimator, sweep::kTenantEstimatorVersion);
  EXPECT_TRUE(result.tenanted());
  ASSERT_EQ(result.tenantJobs.size(), 2u);
  EXPECT_EQ(result.tenantJobs[0].id, "cell");
  EXPECT_EQ(result.tenantJobs[1].id, "bg");
  EXPECT_GE(result.timeIo, result.tenantSoloTimeIo);
  EXPECT_GT(result.tenantJain, 0.0);

  // Store round-trip: tenant lines survive render -> parse exactly.
  const auto back = sweep::CellResult::parse(result.render());
  EXPECT_EQ(back.tenantLabel, result.tenantLabel);
  EXPECT_EQ(back.tenantSeed, result.tenantSeed);
  EXPECT_EQ(back.tenantJain, result.tenantJain);
  EXPECT_EQ(back.tenantSoloTimeIo, result.tenantSoloTimeIo);
  EXPECT_EQ(back.tenantSlowdown, result.tenantSlowdown);
  ASSERT_EQ(back.tenantJobs.size(), result.tenantJobs.size());
  EXPECT_EQ(back.tenantJobs[1].contendedTimeIo,
            result.tenantJobs[1].contendedTimeIo);
  EXPECT_EQ(back.render(), result.render());

  // Untenanted cells render with no tenant lines at all (store compat).
  const auto healthy = sweep::evaluateCell(campaign, cells[0]);
  EXPECT_EQ(healthy.render().find("tenant"), std::string::npos);
}

}  // namespace
