#include <gtest/gtest.h>

#include "toolkit.hpp"
#include "util/args.hpp"

namespace iop::util {
namespace {

Args makeArgs() {
  Args args;
  args.addOption("config", "configuration", "A");
  args.addOption("np", "processes");
  args.addFlag("verbose", "noise");
  return args;
}

void parseArgs(Args& args, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SeparateValueForm) {
  auto args = makeArgs();
  parseArgs(args, {"--config", "B", "--np", "16"});
  EXPECT_EQ(args.get("config"), "B");
  EXPECT_EQ(args.getInt("np", 0), 16);
}

TEST(Args, EqualsValueForm) {
  auto args = makeArgs();
  parseArgs(args, {"--np=64"});
  EXPECT_EQ(args.getInt("np", 0), 64);
}

TEST(Args, DefaultsApply) {
  auto args = makeArgs();
  parseArgs(args, {});
  EXPECT_EQ(args.get("config"), "A");
  EXPECT_FALSE(args.has("np"));
  EXPECT_EQ(args.getInt("np", 7), 7);
}

TEST(Args, FlagsAndPositionals) {
  auto args = makeArgs();
  parseArgs(args, {"--verbose", "file1", "file2"});
  EXPECT_TRUE(args.flag("verbose"));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[1], "file2");
}

TEST(Args, UnknownOptionThrows) {
  auto args = makeArgs();
  EXPECT_THROW(parseArgs(args, {"--nope", "x"}), std::invalid_argument);
}

TEST(Args, MissingValueThrows) {
  auto args = makeArgs();
  EXPECT_THROW(parseArgs(args, {"--np"}), std::invalid_argument);
}

TEST(Args, FlagWithValueThrows) {
  auto args = makeArgs();
  EXPECT_THROW(parseArgs(args, {"--verbose=1"}), std::invalid_argument);
}

TEST(Args, MissingRequiredThrowsOnGet) {
  auto args = makeArgs();
  parseArgs(args, {});
  EXPECT_THROW(args.get("np"), std::invalid_argument);
}

TEST(Args, HelpRequested) {
  auto args = makeArgs();
  parseArgs(args, {"--help"});
  EXPECT_TRUE(args.helpRequested());
}

TEST(Args, GetDouble) {
  auto args = makeArgs();
  parseArgs(args, {"--np", "2.5"});
  EXPECT_DOUBLE_EQ(args.getDouble("np", 0), 2.5);
}

TEST(Args, UsageListsOptions) {
  auto args = makeArgs();
  auto text = args.usage("prog", "does things");
  EXPECT_NE(text.find("--config"), std::string::npos);
  EXPECT_NE(text.find("default: A"), std::string::npos);
  EXPECT_NE(text.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace iop::util

namespace iop::tools {
namespace {

TEST(Toolkit, ParsesConfigIds) {
  EXPECT_EQ(parseConfigId("A"), configs::ConfigId::A);
  EXPECT_EQ(parseConfigId("b"), configs::ConfigId::B);
  EXPECT_EQ(parseConfigId("finisterrae"), configs::ConfigId::Finisterrae);
  EXPECT_EQ(parseConfigId("F"), configs::ConfigId::Finisterrae);
  EXPECT_THROW(parseConfigId("z"), std::invalid_argument);
}

TEST(Toolkit, BuildsEveryKnownApp) {
  auto cluster = configs::makeConfig(configs::ConfigId::A);
  for (const char* app :
       {"btio", "madbench2", "roms", "flash-io", "example"}) {
    util::Args args;
    addAppOptions(args);
    std::vector<const char*> argv{"prog", "--app", app};
    args.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_TRUE(static_cast<bool>(makeAppMain(args, cluster))) << app;
  }
}

TEST(Toolkit, RejectsUnknownApp) {
  auto cluster = configs::makeConfig(configs::ConfigId::A);
  util::Args args;
  addAppOptions(args);
  std::vector<const char*> argv{"prog", "--app", "doom"};
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_THROW(makeAppMain(args, cluster), std::invalid_argument);
}

TEST(Toolkit, BtioKnobsApplied) {
  auto cluster = configs::makeConfig(configs::ConfigId::A);
  util::Args args;
  addAppOptions(args);
  std::vector<const char*> argv{"prog", "--app", "btio", "--class", "D",
                                "--subtype", "simple"};
  args.parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(static_cast<bool>(makeAppMain(args, cluster)));
  std::vector<const char*> bad{"prog", "--app", "btio", "--class", "Z"};
  util::Args args2;
  addAppOptions(args2);
  args2.parse(static_cast<int>(bad.size()), bad.data());
  EXPECT_THROW(makeAppMain(args2, cluster), std::invalid_argument);
}

}  // namespace
}  // namespace iop::tools
