// Observability layer tests: histogram bucket math, trace JSON export
// (well-formed + time-ordered), deterministic metrics CSV, and the
// invariant the whole subsystem is built around — attaching the obs hub
// must not perturb the simulation.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/runner.hpp"
#include "apps/btio.hpp"
#include "configs/configs.hpp"
#include "obs/hub.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/profiler.hpp"
#include "obs/runtime.hpp"

namespace iop {
namespace {

// --- a tiny recursive-descent JSON validator (structure only) -----------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') { ++pos_; return true; }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- histograms ---------------------------------------------------------

TEST(ObsMetrics, HistogramBucketBoundaries) {
  obs::Histogram h({1.0, 2.0, 4.0});
  // "le" semantics: a value exactly on a bound lands in that bucket.
  EXPECT_EQ(h.bucketIndex(0.5), 0u);
  EXPECT_EQ(h.bucketIndex(1.0), 0u);
  EXPECT_EQ(h.bucketIndex(1.000001), 1u);
  EXPECT_EQ(h.bucketIndex(2.0), 1u);
  EXPECT_EQ(h.bucketIndex(4.0), 2u);
  EXPECT_EQ(h.bucketIndex(4.1), 3u);  // overflow (+Inf) bucket
  EXPECT_EQ(h.bucketCounts().size(), 4u);
}

TEST(ObsMetrics, HistogramObserveAccumulates) {
  obs::Histogram h({1.0, 2.0});
  h.observe(0.5);
  h.observe(2.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 12.5 / 3.0);
  EXPECT_EQ(h.bucketCounts()[0], 1u);
  EXPECT_EQ(h.bucketCounts()[1], 1u);
  EXPECT_EQ(h.bucketCounts()[2], 1u);
}

TEST(ObsMetrics, CsvIsDeterministicAcrossInterleavedUpdates) {
  // The CSV depends only on the accumulated values, not on the order
  // instruments were updated (or interleaved between metrics).
  obs::MetricsRegistry a;
  a.counter("x.count").add(1);
  a.histogram("y.depth", {1.0, 2.0}).observe(2.0);
  a.counter("x.count").add(2);
  a.histogram("y.depth", {1.0, 2.0}).observe(0.5);
  obs::MetricsRegistry b;
  b.histogram("y.depth", {1.0, 2.0}).observe(0.5);
  b.counter("x.count").add(2);
  b.histogram("y.depth", {1.0, 2.0}).observe(2.0);
  b.counter("x.count").add(1);
  EXPECT_EQ(a.renderCsv(), b.renderCsv());
  // Bucket rows present, including the +Inf overflow row.
  EXPECT_NE(a.renderCsv().find("y.depth,histogram,le_1,1"),
            std::string::npos);
  EXPECT_NE(a.renderCsv().find("y.depth,histogram,le_inf"),
            std::string::npos);
}

TEST(ObsMetrics, DefaultBucketSetsAreAscending) {
  for (const auto& bounds :
       {obs::latencyBucketsSeconds(), obs::depthBuckets()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(ObsMetrics, RegistryInstrumentsAreStableAndKindChecked) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("a.count");
  c.add(2.0);
  EXPECT_EQ(&reg.counter("a.count"), &c);  // get-or-create memoizes
  EXPECT_DOUBLE_EQ(reg.counter("a.count").value(), 2.0);
  EXPECT_THROW(reg.gauge("a.count"), std::logic_error);
  EXPECT_THROW(reg.histogram("a.count", {1.0}), std::logic_error);
  EXPECT_EQ(reg.findCounter("missing"), nullptr);
  EXPECT_NE(reg.findCounter("a.count"), nullptr);
}

// --- instrument merging (per-shard registries folded into one) ----------

TEST(ObsMetrics, HistogramMergeWithZeroObservations) {
  obs::Histogram a({1.0, 2.0});
  obs::Histogram empty({1.0, 2.0});
  a.observe(0.5);
  a.observe(10.0);
  a.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  obs::Histogram other({1.0, 2.0});
  other.merge(empty);  // empty into empty stays empty
  EXPECT_EQ(other.count(), 0u);
  other.merge(a);  // an empty histogram absorbs a populated one wholesale
  EXPECT_EQ(other.count(), 2u);
  EXPECT_DOUBLE_EQ(other.sum(), 10.5);
  EXPECT_DOUBLE_EQ(other.min(), 0.5);
  EXPECT_DOUBLE_EQ(other.max(), 10.0);
}

TEST(ObsMetrics, HistogramMergeSingleBucketOverflow) {
  // A single bound yields two buckets (le_1 + inf): overflow counts on
  // both sides must fold into the shared +Inf bucket.
  obs::Histogram a({1.0});
  obs::Histogram b({1.0});
  a.observe(0.5);
  a.observe(5.0);
  b.observe(7.0);
  b.observe(9.0);
  a.merge(b);
  ASSERT_EQ(a.bucketCounts().size(), 2u);
  EXPECT_EQ(a.bucketCounts()[0], 1u);
  EXPECT_EQ(a.bucketCounts()[1], 3u);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  obs::Histogram mismatched({2.0});
  EXPECT_THROW(a.merge(mismatched), std::invalid_argument);
}

TEST(ObsMetrics, GaugeMergeRespectsTouchedState) {
  obs::Gauge a;
  obs::Gauge b;
  obs::Gauge untouched;
  a.set(5.0);
  b.set(2.0);
  a.merge(untouched);  // an untouched gauge merges as a no-op
  EXPECT_DOUBLE_EQ(a.value(), 5.0);
  a.merge(b);  // the merged-in history is newer: its value wins
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);  // envelope covers both histories
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
}

TEST(ObsMetrics, RegistryMergeFoldsAndChecksKinds) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("x.count").add(2);
  b.counter("x.count").add(3);
  b.gauge("q.depth").set(7.0);
  b.histogram("y.lat", {1.0}).observe(0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.counter("x.count").value(), 5.0);
  EXPECT_DOUBLE_EQ(a.gauge("q.depth").value(), 7.0);
  EXPECT_EQ(a.histogram("y.lat", {1.0}).count(), 1u);

  const std::string before = a.renderCsv();
  const obs::MetricsRegistry empty;
  a.merge(empty);  // empty-registry merge is a no-op
  EXPECT_EQ(a.renderCsv(), before);

  obs::MetricsRegistry conflict;
  conflict.gauge("x.count").set(1.0);
  EXPECT_THROW(a.merge(conflict), std::logic_error);
}

// --- wall-clock runtime instruments (obs/runtime.hpp) -------------------

TEST(ObsRuntime, RegistryIsStableAndKindChecked) {
  obs::RuntimeMetrics m;
  auto& c = m.counter("a.count");
  c.add(2);
  EXPECT_EQ(&m.counter("a.count"), &c);  // get-or-create memoizes
  EXPECT_EQ(m.counter("a.count").value(), 2u);
  EXPECT_THROW(m.gauge("a.count"), std::logic_error);
  EXPECT_THROW(m.histogram("a.count", {1.0}), std::logic_error);
  EXPECT_EQ(m.findCounter("missing"), nullptr);
  EXPECT_EQ(m.findCounter("a.count"), &c);
}

TEST(ObsRuntime, RuntimeHistogramMatchesLeSemantics) {
  obs::RuntimeHistogram h({1.0, 2.0});
  h.observe(1.0);   // on-bound lands in that bucket
  h.observe(1.5);
  h.observe(99.0);  // overflow
  const auto counts = h.bucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 101.5);
}

TEST(ObsRuntime, RenderPromFormatsAllInstrumentKinds) {
  obs::RuntimeMetrics m;
  m.counter("sweep.cells").add(3);
  m.gauge("sim.arena_bytes").set(64.0);
  auto& h = m.histogram("sweep.replay_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string prom = m.renderProm();
  const auto npos = std::string::npos;
  // Name mangling: <subsystem>.<quantity> -> iop_<subsystem>_<quantity>,
  // counters with the conventional _total suffix.
  EXPECT_NE(prom.find("# TYPE iop_sweep_cells_total counter"), npos);
  EXPECT_NE(prom.find("iop_sweep_cells_total 3"), npos);
  EXPECT_NE(prom.find("# TYPE iop_sim_arena_bytes gauge"), npos);
  EXPECT_NE(prom.find("iop_sim_arena_bytes 64"), npos);
  // Histogram buckets are cumulative, with the implicit +Inf bucket.
  EXPECT_NE(prom.find("iop_sweep_replay_seconds_bucket{le=\"0.1\"} 1"),
            npos);
  EXPECT_NE(prom.find("iop_sweep_replay_seconds_bucket{le=\"1\"} 2"), npos);
  EXPECT_NE(prom.find("iop_sweep_replay_seconds_bucket{le=\"+Inf\"} 3"),
            npos);
  EXPECT_NE(prom.find("iop_sweep_replay_seconds_count 3"), npos);
  // Deterministic for a given state.
  EXPECT_EQ(prom, m.renderProm());
}

TEST(ObsRuntime, SnapshotterWritesFinalSnapshotOnStop) {
  const auto dir =
      std::filesystem::temp_directory_path() / "iop_obs_snap_test";
  std::filesystem::remove_all(dir);
  obs::RuntimeMetrics m;
  m.counter("a.count").add(1);
  {
    obs::TelemetrySnapshotter snap(m, dir / "m.prom", 50);
    m.counter("a.count").add(1);
  }  // destruction stops the thread and writes one final snapshot
  std::ifstream in(dir / "m.prom");
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("iop_a_count_total 2"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(ObsRuntime, JournalRoundTripsAndToleratesTornTail) {
  const auto dir =
      std::filesystem::temp_directory_path() / "iop_obs_journal_test";
  std::filesystem::remove_all(dir);
  const auto path = dir / "run.jsonl";
  {
    obs::RunJournal journal(path);  // creates parent directories
    journal.event("cell_claim",
                  "\"worker\":1,\"cell\":\"m \\\"q\\\" @ A\"");
    journal.event("plain");
  }
  auto parsed = obs::loadJournal(path);
  EXPECT_EQ(parsed.badLines, 0u);
  ASSERT_EQ(parsed.events.size(), 3u);  // journal_start + the two above
  EXPECT_EQ(parsed.events[0].name, "journal_start");
  ASSERT_NE(parsed.events[0].field("schema"), nullptr);
  EXPECT_EQ(*parsed.events[0].field("schema"), obs::RunJournal::kSchema);
  EXPECT_EQ(parsed.events[1].name, "cell_claim");
  ASSERT_NE(parsed.events[1].field("worker"), nullptr);
  EXPECT_EQ(*parsed.events[1].field("worker"), "1");  // literal JSON text
  ASSERT_NE(parsed.events[1].field("cell"), nullptr);
  EXPECT_EQ(*parsed.events[1].field("cell"), "m \"q\" @ A");  // unescaped
  EXPECT_LE(parsed.events[0].t, parsed.events[1].t);
  EXPECT_EQ(parsed.events[2].name, "plain");

  // A SIGKILL mid-write leaves one torn, unterminated tail line: it is
  // counted in badLines, never fatal, and costs no parsed events.
  std::ofstream(path, std::ios::app) << "{\"t\":9.0,\"event\":\"cell_com";
  parsed = obs::loadJournal(path);
  EXPECT_EQ(parsed.events.size(), 3u);
  EXPECT_EQ(parsed.badLines, 1u);
  std::filesystem::remove_all(dir);
}

// --- recorder -----------------------------------------------------------

TEST(ObsRecorder, TracksAreMemoizedPerKind) {
  obs::TraceRecorder rec;
  const int a = rec.track(obs::TrackKind::Device, "disk0");
  EXPECT_EQ(rec.track(obs::TrackKind::Device, "disk0"), a);
  EXPECT_NE(rec.track(obs::TrackKind::Device, "disk1"), a);
  // Same name under a different kind is a different track namespace.
  EXPECT_EQ(rec.track(obs::TrackKind::Rank, "disk0"), 0);
}

TEST(ObsRecorder, JsonIsWellFormedAndTimeOrdered) {
  obs::TraceRecorder rec;
  const int tid = rec.rankTrack(0);
  // Insert out of order and with strings that need escaping; export must
  // still be valid JSON sorted by timestamp.
  rec.span(obs::TrackKind::Rank, tid, "write \"a\\b\"\n", "mpi.io", 2.0, 3.0,
           "\"bytes\":42");
  rec.instant(obs::TrackKind::Rank, tid, "tick", "mpi.comm", 0.5);
  rec.counterSample(obs::TrackKind::Sim, rec.track(obs::TrackKind::Sim, "q"),
                    "depth", 1.0, 7.0);
  std::ostringstream out;
  rec.writeJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

  // Non-metadata events must come out time-ordered (500000, 1000000,
  // 2000000 us) regardless of insertion order.
  const auto instant = json.find("\"ph\":\"i\"");
  const auto counter = json.find("\"ph\":\"C\"");
  const auto span = json.find("\"ph\":\"X\"");
  ASSERT_NE(instant, std::string::npos);
  ASSERT_NE(counter, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  EXPECT_LT(instant, counter);
  EXPECT_LT(counter, span);
}

TEST(ObsRecorder, JsonEscape) {
  EXPECT_EQ(obs::TraceRecorder::jsonEscape("a\"b\\c\n\t"),
            "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(obs::TraceRecorder::jsonEscape(std::string(1, '\x01')),
            "\\u0001");
}

TEST(ObsRecorder, HostileNamesRoundTripToValidJson) {
  // Track and event names chosen to break naive serializers: quotes,
  // backslashes, control characters, and bytes that are not valid UTF-8.
  const std::string hostile = std::string("dev \"q\"\\\x01\n\x7f ") +
                              "\xc3\x28" + "\xff\xfe" + " end";
  obs::TraceRecorder rec;
  const int tid = rec.track(obs::TrackKind::Device, hostile);
  rec.span(obs::TrackKind::Device, tid, hostile, hostile, 0.0, 1.0,
           "\"note\":\"" + obs::TraceRecorder::jsonEscape(hostile) + "\"");
  rec.instant(obs::TrackKind::Device, tid, hostile, hostile, 0.5);
  std::ostringstream out;
  rec.writeJson(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Invalid byte sequences must have been replaced, never passed through.
  EXPECT_EQ(json.find('\xff'), std::string::npos);
  EXPECT_EQ(json.find("\xc3\x28"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

// --- whole-simulation properties ----------------------------------------

struct ObservedRun {
  double makespan = 0;
  std::string phaseTable;
  std::string metricsCsv;
  std::string traceJson;
  std::size_t edgeActivities = 0;
  std::size_t edgeLinks = 0;
};

ObservedRun runBtio(bool observed) {
  auto cluster = configs::makeConfig(configs::ConfigId::A);
  obs::Session session;
  if (observed) cluster.engine->setObs(session.hub());
  apps::BtioParams params;
  params.mount = cluster.mount;
  params.cls = apps::BtClass::A;
  auto run =
      analysis::runAndTrace(cluster, "btio", apps::makeBtio(params), 4);
  ObservedRun result;
  result.makespan = run.makespanSeconds;
  result.phaseTable = core::renderPhaseTable(run.model.phases());
  if (observed) {
    result.metricsCsv = session.metrics().renderCsv();
    std::ostringstream json;
    session.recorder().writeJson(json);
    result.traceJson = json.str();
    result.edgeActivities = session.edges().activities().size();
    result.edgeLinks = session.edges().links().size();
  }
  return result;
}

TEST(ObsIntegration, MetricsCsvIsByteIdenticalAcrossRuns) {
  const auto first = runBtio(true);
  const auto second = runBtio(true);
  ASSERT_FALSE(first.metricsCsv.empty());
  EXPECT_EQ(first.metricsCsv, second.metricsCsv);
  EXPECT_EQ(first.traceJson, second.traceJson);
}

TEST(ObsIntegration, AttachingObsDoesNotPerturbSimulation) {
  // The zero-interference invariant: an observed BT-IO run must produce
  // exactly the same makespan and phase table as an unobserved one —
  // including with dependency-edge recording active (the Session wires an
  // EdgeRecorder by default, and the run below must actually feed it).
  const auto observed = runBtio(true);
  const auto bare = runBtio(false);
  EXPECT_DOUBLE_EQ(observed.makespan, bare.makespan);
  EXPECT_EQ(observed.phaseTable, bare.phaseTable);
  EXPECT_GT(observed.edgeActivities, 0u);
  EXPECT_GT(observed.edgeLinks, 0u);
}

TEST(ObsIntegration, EdgeGraphIsDeterministicAcrossRuns) {
  const auto first = runBtio(true);
  const auto second = runBtio(true);
  EXPECT_EQ(first.edgeActivities, second.edgeActivities);
  EXPECT_EQ(first.edgeLinks, second.edgeLinks);
}

TEST(ObsIntegration, ObservedRunExportsAllTrackKinds) {
  const auto run = runBtio(true);
  ASSERT_TRUE(JsonChecker(run.traceJson).valid());
  // Rank, device and simulation tracks all present (pids are part of the
  // format contract; see obs::TrackKind).
  EXPECT_NE(run.traceJson.find("\"mpi ranks\""), std::string::npos);
  EXPECT_NE(run.traceJson.find("\"storage devices\""), std::string::npos);
  EXPECT_NE(run.traceJson.find("\"simulation engine\""), std::string::npos);
  EXPECT_NE(run.metricsCsv.find("mpi.io.bytes_written,counter"),
            std::string::npos);
  EXPECT_NE(run.metricsCsv.find("disk.queue_depth,histogram"),
            std::string::npos);
}

TEST(ObsProfiler, ScopesFeedReportAndTrace) {
  auto& prof = obs::Profiler::global();
  obs::TraceRecorder rec;
  prof.attachTrace(&rec);
  { IOP_PROFILE_SCOPE("obs_test.scope"); }
  prof.attachTrace(nullptr);
  EXPECT_NE(prof.renderReport().find("obs_test.scope"), std::string::npos);
  bool sawSpan = false;
  for (const auto& ev : rec.events()) {
    if (ev.name == "obs_test.scope" &&
        ev.phase == obs::EventPhase::Complete) {
      sawSpan = true;
    }
  }
  EXPECT_TRUE(sawSpan);
}

}  // namespace
}  // namespace iop
