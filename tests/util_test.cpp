#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/text.hpp"
#include "util/units.hpp"

namespace iop::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(5.0, 6.5);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.5);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) {
    std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(13);
  double sum = 0, sumSq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(10.0, 2.0);
    sum += v;
    sumSq += v * v;
  }
  double mean = sum / n;
  double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Units, FormatExactUnits) {
  EXPECT_EQ(formatBytes(32 * MiB), "32MB");
  EXPECT_EQ(formatBytes(4 * GiB), "4GB");
  EXPECT_EQ(formatBytes(256 * KiB), "256KB");
  EXPECT_EQ(formatBytes(512), "512B");
}

TEST(Units, FormatInexactFallsBackToApprox) {
  EXPECT_EQ(formatBytes(10612080), "10.12MB");
}

TEST(Units, ParseRoundTrips) {
  EXPECT_EQ(parseBytes("32MB"), 32 * MiB);
  EXPECT_EQ(parseBytes("256KB"), 256 * KiB);
  EXPECT_EQ(parseBytes("4GB"), 4 * GiB);
  EXPECT_EQ(parseBytes("1TiB"), TiB);
  EXPECT_EQ(parseBytes("123"), 123u);
  EXPECT_EQ(parseBytes("8 MB"), 8 * MiB);
  EXPECT_EQ(parseBytes("2g"), 2 * GiB);
}

TEST(Units, ParseRejectsGarbage) {
  EXPECT_THROW(parseBytes(""), std::invalid_argument);
  EXPECT_THROW(parseBytes("MB"), std::invalid_argument);
  EXPECT_THROW(parseBytes("12XB"), std::invalid_argument);
  EXPECT_THROW(parseBytes("12MBx"), std::invalid_argument);
}

TEST(Units, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(toMiBs(fromMiBs(123.5)), 123.5);
  EXPECT_EQ(formatBandwidthMiBs(fromMiBs(93.0)), "93.00 MB/s");
}

TEST(Table, RendersAlignedCells) {
  Table t("Demo");
  t.setHeader({"Phase", "Weight"}, {Align::Left, Align::Right});
  t.addRow({"1", "4GB"});
  t.addRow({"22", "1GB"});
  std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("| Phase |"), std::string::npos);
  EXPECT_NE(out.find("|    4GB |"), std::string::npos);
}

TEST(Table, TsvOutputSkipsSeparators) {
  Table t;
  t.setHeader({"a", "b"});
  t.addRow({"1", "2"});
  t.addSeparator();
  t.addRow({"3", "4"});
  EXPECT_EQ(t.renderTsv(), "a\tb\n1\t2\n3\t4\n");
}

TEST(Text, SplitWhitespaceDropsRuns) {
  auto parts = splitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Text, SplitKeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Text, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(startsWith("MPI_File_write_at_all", "MPI_File_write"));
  EXPECT_FALSE(startsWith("abc", "abcd"));
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace iop::util
