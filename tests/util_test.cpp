#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/text.hpp"
#include "util/units.hpp"
#include "util/vfs.hpp"

namespace iop::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(5.0, 6.5);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.5);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) {
    std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(13);
  double sum = 0, sumSq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(10.0, 2.0);
    sum += v;
    sumSq += v * v;
  }
  double mean = sum / n;
  double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(21);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Units, FormatExactUnits) {
  EXPECT_EQ(formatBytes(32 * MiB), "32MB");
  EXPECT_EQ(formatBytes(4 * GiB), "4GB");
  EXPECT_EQ(formatBytes(256 * KiB), "256KB");
  EXPECT_EQ(formatBytes(512), "512B");
}

TEST(Units, FormatInexactFallsBackToApprox) {
  EXPECT_EQ(formatBytes(10612080), "10.12MB");
}

TEST(Units, ParseRoundTrips) {
  EXPECT_EQ(parseBytes("32MB"), 32 * MiB);
  EXPECT_EQ(parseBytes("256KB"), 256 * KiB);
  EXPECT_EQ(parseBytes("4GB"), 4 * GiB);
  EXPECT_EQ(parseBytes("1TiB"), TiB);
  EXPECT_EQ(parseBytes("123"), 123u);
  EXPECT_EQ(parseBytes("8 MB"), 8 * MiB);
  EXPECT_EQ(parseBytes("2g"), 2 * GiB);
}

TEST(Units, ParseRejectsGarbage) {
  EXPECT_THROW(parseBytes(""), std::invalid_argument);
  EXPECT_THROW(parseBytes("MB"), std::invalid_argument);
  EXPECT_THROW(parseBytes("12XB"), std::invalid_argument);
  EXPECT_THROW(parseBytes("12MBx"), std::invalid_argument);
}

TEST(Units, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(toMiBs(fromMiBs(123.5)), 123.5);
  EXPECT_EQ(formatBandwidthMiBs(fromMiBs(93.0)), "93.00 MB/s");
}

TEST(Table, RendersAlignedCells) {
  Table t("Demo");
  t.setHeader({"Phase", "Weight"}, {Align::Left, Align::Right});
  t.addRow({"1", "4GB"});
  t.addRow({"22", "1GB"});
  std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("| Phase |"), std::string::npos);
  EXPECT_NE(out.find("|    4GB |"), std::string::npos);
}

TEST(Table, TsvOutputSkipsSeparators) {
  Table t;
  t.setHeader({"a", "b"});
  t.addRow({"1", "2"});
  t.addSeparator();
  t.addRow({"3", "4"});
  EXPECT_EQ(t.renderTsv(), "a\tb\n1\t2\n3\t4\n");
}

TEST(Text, SplitWhitespaceDropsRuns) {
  auto parts = splitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Text, SplitKeepsEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Text, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(startsWith("MPI_File_write_at_all", "MPI_File_write"));
  EXPECT_FALSE(startsWith("abc", "abcd"));
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

// -- vfs: durability barriers and crash injection -------------------------

class VfsTempDir {
 public:
  explicit VfsTempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("iop_vfs_test_" + name)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~VfsTempDir() { std::filesystem::remove_all(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t tempFileCount(const std::filesystem::path& dir) {
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") !=
        std::string::npos) {
      ++n;
    }
  }
  return n;
}

TEST(Vfs, ReplaceFileWritesAtomicallyAndCountsBarrierOps) {
  VfsTempDir dir("replace");
  const auto path = dir.path() / "file.txt";
  const auto before = vfs::barrierOps();
  vfs::replaceFile(path, "hello\n");
  EXPECT_EQ(slurp(path), "hello\n");
  EXPECT_EQ(vfs::barrierOps(), before + 1);
  vfs::replaceFile(path, "world\n");
  EXPECT_EQ(slurp(path), "world\n");
  EXPECT_EQ(vfs::barrierOps(), before + 2);
  EXPECT_EQ(tempFileCount(dir.path()), 0u);
}

TEST(Vfs, ScratchDurabilitySkipsCrashAccounting) {
  VfsTempDir dir("scratch");
  const auto before = vfs::barrierOps();
  vfs::replaceFile(dir.path() / "snap.prom", "metric 1\n",
                   vfs::Durability::Scratch);
  EXPECT_EQ(vfs::barrierOps(), before);  // observational outputs do not
                                         // perturb crash-point numbering
  EXPECT_EQ(slurp(dir.path() / "snap.prom"), "metric 1\n");
}

TEST(Vfs, ReplaceFileCleansUpItsTempOnFailure) {
  VfsTempDir dir("cleanup");
  // Renaming a regular file over a non-empty directory fails: the temp
  // must not be left behind (the leak the fsck temp sweep exists for is
  // writers that die, not writers that fail).
  const auto target = dir.path() / "occupied";
  std::filesystem::create_directories(target / "child");
  EXPECT_THROW(vfs::replaceFile(target, "text"), std::exception);
  EXPECT_EQ(tempFileCount(dir.path()), 0u);
  EXPECT_TRUE(std::filesystem::is_directory(target / "child"));
}

TEST(Vfs, AppendFileCreatesAndAppends) {
  VfsTempDir dir("append");
  const auto path = dir.path() / "log.jsonl";
  const auto before = vfs::barrierOps();
  vfs::appendFile(path, "one\n");
  vfs::appendFile(path, "two\n");
  EXPECT_EQ(slurp(path), "one\ntwo\n");
  EXPECT_EQ(vfs::barrierOps(), before + 2);
}

TEST(Vfs, AppendStreamFlushesEachRecord) {
  VfsTempDir dir("stream");
  const auto path = dir.path() / "journal.jsonl";
  vfs::AppendStream stream(path, vfs::Durability::Durable,
                           /*truncate=*/true);
  EXPECT_TRUE(stream.append("a\n"));
  EXPECT_TRUE(stream.append("b\n"));
  EXPECT_FALSE(stream.failed());
  // Durable appends are visible before close: each one was flushed and
  // fsync()ed as its own barrier.
  EXPECT_EQ(slurp(path), "a\nb\n");
  stream.close();
  EXPECT_FALSE(stream.append("after close\n"));
}

// Death tests: the injected crash exits the child with kCrashExitCode
// and leaves exactly the advertised torn state for the parent to inspect.
using VfsCrashDeathTest = ::testing::Test;

TEST(VfsCrashDeathTest, ModeZeroRenamesTruncatedBytesIntoPlace) {
  VfsTempDir dir("tear0");
  const auto path = dir.path() / "cell.txt";
  vfs::replaceFile(path, "old-contents\n");
  EXPECT_EXIT(
      {
        vfs::setCrashMode(0);
        vfs::setCrashPoint(vfs::barrierOps() + 1);
        vfs::replaceFile(path, "new-contents\n");
      },
      ::testing::ExitedWithCode(vfs::kCrashExitCode), "");
  // Half the new bytes, renamed into place: durable rename, torn data.
  const std::string text = slurp(path);
  EXPECT_EQ(text, std::string("new-contents\n").substr(0, 6));
}

TEST(VfsCrashDeathTest, ModeOneLeavesAnOrphanTempBesideTheOldFile) {
  VfsTempDir dir("tear1");
  const auto path = dir.path() / "cell.txt";
  vfs::replaceFile(path, "old-contents\n");
  EXPECT_EXIT(
      {
        vfs::setCrashMode(1);
        vfs::setCrashPoint(vfs::barrierOps() + 1);
        vfs::replaceFile(path, "new-contents\n");
      },
      ::testing::ExitedWithCode(vfs::kCrashExitCode), "");
  EXPECT_EQ(slurp(path), "old-contents\n");  // old file intact
  EXPECT_EQ(tempFileCount(dir.path()), 1u);  // the orphan fsck sweeps
}

TEST(VfsCrashDeathTest, ModeTwoDropsTheWholeOperation) {
  VfsTempDir dir("tear2");
  const auto path = dir.path() / "cell.txt";
  vfs::replaceFile(path, "old-contents\n");
  EXPECT_EXIT(
      {
        vfs::setCrashMode(2);
        vfs::setCrashPoint(vfs::barrierOps() + 1);
        vfs::replaceFile(path, "new-contents\n");
      },
      ::testing::ExitedWithCode(vfs::kCrashExitCode), "");
  EXPECT_EQ(slurp(path), "old-contents\n");
  EXPECT_EQ(tempFileCount(dir.path()), 0u);
}

TEST(VfsCrashDeathTest, AppendTearLeavesHalfARecordWithNoTerminator) {
  VfsTempDir dir("tear_append");
  const auto path = dir.path() / "manifest.jsonl";
  vfs::appendFile(path, "whole-record\n");
  EXPECT_EXIT(
      {
        vfs::setCrashMode(0);
        vfs::setCrashPoint(vfs::barrierOps() + 1);
        vfs::appendFile(path, "torn-record\n");
      },
      ::testing::ExitedWithCode(vfs::kCrashExitCode), "");
  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("whole-record\n", 0), 0u);
  EXPECT_GT(text.size(), std::string("whole-record\n").size());
  EXPECT_NE(text.back(), '\n');  // the torn tail fsck truncates
}

}  // namespace
}  // namespace iop::util
