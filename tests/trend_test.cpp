// Longitudinal observability: capture format v2 (columnar,
// block-compressed, checksummed), the content-addressed capture archive,
// and the trend engine's median/MAD change-point rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/archive.hpp"
#include "obs/benchjson.hpp"
#include "obs/capture.hpp"
#include "obs/diff.hpp"
#include "obs/trend.hpp"

namespace {

using namespace iop;

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("iop_trend_test_" + name)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// A capture shaped like a real run: many same-family phases whose ids
/// step by one (RLE + delta friendly), histogram-heavy metrics CSV
/// (front-coding friendly), and awkward doubles that must round-trip
/// bit-exactly.
obs::RunCapture realisticCapture(double makespan = 261.875,
                                 double slowdown = 1.0) {
  obs::RunCapture cap;
  cap.app = "btio";
  cap.np = 4;
  cap.config = "Configuration A";
  cap.makespan = makespan * slowdown;
  for (int i = 0; i < 40; ++i) {
    obs::CapturePhase p;
    p.id = i + 1;
    p.familyId = i == 39 ? 2 : 1;
    p.weightBytes = 419430400;
    p.ioSeconds = (1.703 + 0.001 * (i % 3)) * slowdown;
    p.bandwidth = static_cast<double>(p.weightBytes) / p.ioSeconds;
    p.label = i == 39 ? "R f1" : "W f1";
    cap.phases.push_back(std::move(p));
  }
  std::ostringstream csv;
  csv << "metric,kind,field,value\n";
  for (const char* dev : {"disk.0", "disk.1", "disk.2", "disk.3"}) {
    for (const char* le :
         {"0.001", "0.01", "0.1", "1", "10", "100", "inf"}) {
      csv << "engine." << dev << ".service_seconds,histogram,le_" << le
          << "," << (le[0] == 'i' ? 4096 : 117) << "\n";
    }
    csv << "engine." << dev << ".queue_depth,gauge,value,3\n";
  }
  cap.metricsCsv = csv.str();
  return cap;
}

void expectSameCapture(const obs::RunCapture& a, const obs::RunCapture& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.np, b.np);
  EXPECT_EQ(a.config, b.config);
  // Bit-exact doubles: iop-diff on a v1 capture vs its v2 re-encoding
  // must see literally identical values.
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.phases.size(), b.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    EXPECT_EQ(a.phases[i].id, b.phases[i].id);
    EXPECT_EQ(a.phases[i].familyId, b.phases[i].familyId);
    EXPECT_EQ(a.phases[i].weightBytes, b.phases[i].weightBytes);
    EXPECT_EQ(a.phases[i].ioSeconds, b.phases[i].ioSeconds);
    EXPECT_EQ(a.phases[i].bandwidth, b.phases[i].bandwidth);
    EXPECT_EQ(a.phases[i].label, b.phases[i].label);
  }
  EXPECT_EQ(a.metricsCsv, b.metricsCsv);
}

// --- capture format v2 --------------------------------------------------

TEST(CaptureV2, RoundTripsSemanticStateExactly) {
  const auto cap = realisticCapture();
  const auto back = obs::RunCapture::parse(cap.serialize(obs::CaptureFormat::V2));
  expectSameCapture(cap, back);
}

TEST(CaptureV2, RoundTripsAwkwardValues) {
  obs::RunCapture cap;
  cap.app = "app with \"quotes\" and, commas";
  cap.np = 1;
  cap.config = "";
  cap.makespan = 0.1 + 0.2;  // not exactly representable
  obs::CapturePhase p;
  p.id = -3;                 // negative ids survive zigzag
  p.familyId = 1 << 20;
  p.weightBytes = 0;
  p.ioSeconds = 1e-300;
  p.bandwidth = 9.87654321e18;
  p.label = "label\twith\ttabs";
  cap.phases.push_back(p);
  cap.metricsCsv = "no trailing newline";
  const auto back =
      obs::RunCapture::parse(cap.serialize(obs::CaptureFormat::V2));
  expectSameCapture(cap, back);
}

TEST(CaptureV2, EmptyCaptureRoundTrips) {
  obs::RunCapture cap;
  cap.app = "x";
  cap.np = 0;
  cap.config = "c";
  cap.makespan = 0;
  const auto back =
      obs::RunCapture::parse(cap.serialize(obs::CaptureFormat::V2));
  expectSameCapture(cap, back);
}

TEST(CaptureV2, ParseSniffsBothFormats) {
  const auto cap = realisticCapture();
  const std::string v1 = cap.serialize(obs::CaptureFormat::V1);
  EXPECT_EQ(v1.rfind("iop-capture v1\n", 0), 0u);
  // v1's text encoding rounds doubles, so compare the v2 re-encoding of
  // what v1 actually preserved — v2 itself is bit-exact.
  const auto fromV1 = obs::RunCapture::parse(v1);
  const std::string v2 = fromV1.serialize(obs::CaptureFormat::V2);
  EXPECT_EQ(v2.rfind("iop-capture v2\n", 0), 0u);
  expectSameCapture(fromV1, obs::RunCapture::parse(v2));
}

TEST(CaptureV2, LoadSniffsSavedFiles) {
  TempDir dir("sniff");
  const auto cap = realisticCapture();
  const std::string v1Path = (dir.path() / "a.cap").string();
  const std::string v2Path = (dir.path() / "a.capv2").string();
  cap.save(v1Path, obs::CaptureFormat::V1);
  const auto fromV1 = obs::RunCapture::load(v1Path);
  fromV1.save(v2Path, obs::CaptureFormat::V2);
  expectSameCapture(fromV1, obs::RunCapture::load(v2Path));
}

TEST(CaptureV2, DiffSeesV1AndV2EncodingsAsIdentical) {
  const auto cap = realisticCapture();
  const auto v2 =
      obs::RunCapture::parse(cap.serialize(obs::CaptureFormat::V2));
  const auto result = obs::diffCaptures(cap, v2);
  EXPECT_EQ(result.regressions(), 0u);
  EXPECT_TRUE(result.findings.empty());
}

TEST(CaptureV2, CompressesBelowFortyPercentOfV1) {
  const auto cap = realisticCapture();
  const std::size_t v1 = cap.serialize(obs::CaptureFormat::V1).size();
  const std::size_t v2 = cap.serialize(obs::CaptureFormat::V2).size();
  EXPECT_LE(v2 * 100, v1 * 40)
      << "v2 is " << v2 << " bytes, v1 is " << v1 << " bytes";
}

TEST(CaptureV2, EncodingIsDeterministic) {
  const auto cap = realisticCapture();
  EXPECT_EQ(cap.serialize(obs::CaptureFormat::V2),
            cap.serialize(obs::CaptureFormat::V2));
}

TEST(CaptureV2, EveryTruncationIsRejectedWithDiagnostics) {
  const std::string full =
      realisticCapture().serialize(obs::CaptureFormat::V2);
  for (std::size_t len = 0; len < full.size(); ++len) {
    try {
      obs::RunCapture::parse(full.substr(0, len));
      FAIL() << "truncation to " << len << " bytes parsed successfully";
    } catch (const std::exception& e) {
      EXPECT_STRNE(e.what(), "") << "empty diagnostic at length " << len;
    }
  }
}

TEST(CaptureV2, TrailingGarbageAfterEndBlockIsRejected) {
  std::string bytes = realisticCapture().serialize(obs::CaptureFormat::V2);
  bytes += '\0';
  EXPECT_THROW(obs::RunCapture::parse(bytes), std::runtime_error);
}

TEST(CaptureV2, EveryBitFlipIsDetectedOrHarmless) {
  const auto cap = realisticCapture();
  const std::string full = cap.serialize(obs::CaptureFormat::V2);
  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = full;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      try {
        // Block checksums make silent mis-parses the failure mode to
        // fear; a flip that still decodes must decode to the same run.
        expectSameCapture(cap, obs::RunCapture::parse(flipped));
      } catch (const std::exception& e) {
        EXPECT_STRNE(e.what(), "")
            << "empty diagnostic at byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(CaptureV2, FormatNamesParse) {
  EXPECT_EQ(obs::parseCaptureFormat("v1"), obs::CaptureFormat::V1);
  EXPECT_EQ(obs::parseCaptureFormat("v2"), obs::CaptureFormat::V2);
  EXPECT_THROW(obs::parseCaptureFormat("v3"), std::invalid_argument);
}

// --- archive ------------------------------------------------------------

constexpr const char* kBenchDoc =
    "{\"schema\":\"iop-bench/1\",\"results\":["
    "{\"name\":\"BM_Engine\",\"iterations\":100,\"ns_per_op\":1250.5,"
    "\"bytes_per_second\":2000000}]}";

TEST(Archive, AddListLoadRoundTrip) {
  TempDir dir("roundtrip");
  obs::Archive archive(dir.path());
  const auto cap = realisticCapture();
  const auto first = archive.addCapture(cap, "aaaa111");
  const auto second = archive.addBench(kBenchDoc, "engine", "aaaa111");
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(second.seq, 2u);
  EXPECT_EQ(first.seriesKey(), "btio/Configuration A/4");
  EXPECT_EQ(second.seriesKey(), "engine/bench/0");

  std::size_t badLines = 99;
  const auto entries = archive.list(&badLines);
  EXPECT_EQ(badLines, 0u);
  ASSERT_EQ(entries.size(), 2u);
  expectSameCapture(cap, archive.loadCapture(entries[0]));
  const auto bench = archive.loadBench(entries[1]);
  ASSERT_EQ(bench.size(), 1u);
  EXPECT_EQ(bench[0].name, "BM_Engine");
  EXPECT_DOUBLE_EQ(bench[0].nsPerOp, 1250.5);

  EXPECT_THROW(archive.loadCapture(entries[1]), std::runtime_error);
  EXPECT_THROW(archive.loadBench(entries[0]), std::runtime_error);
}

TEST(Archive, IdenticalPayloadsShareOneObject) {
  TempDir dir("dedup");
  obs::Archive archive(dir.path());
  const auto cap = realisticCapture();
  const auto a = archive.addCapture(cap, "one");
  const auto b = archive.addCapture(cap, "two");
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_NE(a.seq, b.seq);
  std::size_t objects = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path() / "objects")) {
    objects += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(objects, 1u);
}

TEST(Archive, MalformedBenchNeverEntersTheArchive) {
  TempDir dir("badbench");
  obs::Archive archive(dir.path());
  EXPECT_THROW(archive.addBench("{\"schema\":\"nope\"}", "x", ""),
               std::invalid_argument);
  EXPECT_TRUE(archive.list().empty());
}

TEST(Archive, TornManifestLinesAreSkippedNotFatal) {
  TempDir dir("torn");
  obs::Archive archive(dir.path());
  archive.addCapture(realisticCapture(), "good");
  {
    std::ofstream out(archive.manifestPath(),
                      std::ios::binary | std::ios::app);
    out << "{\"schema\":\"iop-archive/1\",\"seq\":2,\"kind\":\"cap";
  }
  std::size_t badLines = 0;
  const auto entries = archive.list(&badLines);
  EXPECT_EQ(entries.size(), 1u);
  EXPECT_EQ(badLines, 1u);
  // The archive keeps working: the next append lands after the torn tail.
  archive.addCapture(realisticCapture(100.0), "after");
  EXPECT_EQ(archive.list().size(), 2u);
}

TEST(Archive, ClobberedObjectIsDetectedOnLoad) {
  TempDir dir("clobber");
  obs::Archive archive(dir.path());
  const auto entry = archive.addCapture(realisticCapture(), "x");
  {
    std::ofstream out(archive.objectPath(entry), std::ios::binary);
    out << "not the archived bytes";
  }
  EXPECT_THROW(archive.loadCapture(entry), std::runtime_error);
}

TEST(Archive, GcKeepsTheNewestPerSeries) {
  TempDir dir("gc");
  obs::Archive archive(dir.path());
  for (int i = 0; i < 5; ++i) {
    archive.addCapture(realisticCapture(100.0 + i), "r" + std::to_string(i));
  }
  archive.addBench(kBenchDoc, "engine", "r0");
  const auto result = archive.gc(2);
  EXPECT_EQ(result.prunedEntries, 3u);  // captures beyond the newest 2
  const auto entries = archive.list();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].label, "r3");
  EXPECT_EQ(entries[1].label, "r4");
  EXPECT_EQ(entries[2].kind, "bench");
  // Surviving entries still load (their objects were not collected).
  for (const auto& e : entries) {
    EXPECT_NO_THROW(archive.loadObject(e));
  }
  std::size_t objects = 0;
  for (const auto& file :
       std::filesystem::directory_iterator(dir.path() / "objects")) {
    objects += file.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(objects, 3u);
}

TEST(Archive, ConcurrentWritersNeverTearTheManifest) {
  TempDir dir("race");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&dir, t] {
      obs::Archive archive(dir.path());
      for (int i = 0; i < kPerThread; ++i) {
        archive.addCapture(realisticCapture(100.0 + t * kPerThread + i),
                           "t" + std::to_string(t));
      }
    });
  }
  for (auto& w : writers) w.join();
  obs::Archive archive(dir.path());
  std::size_t badLines = 0;
  const auto entries = archive.list(&badLines);
  EXPECT_EQ(badLines, 0u);
  ASSERT_EQ(entries.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Every entry's object landed whole (atomic rename) and hash-verifies.
  for (const auto& e : entries) {
    EXPECT_NO_THROW(archive.loadCapture(e));
  }
}

// --- trend engine -------------------------------------------------------

TEST(TrendStats, MedianAndMad) {
  EXPECT_DOUBLE_EQ(obs::medianOf({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(obs::medianOf({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(obs::medianOf({}), 0);
  EXPECT_DOUBLE_EQ(obs::madOf({1, 1, 1, 10}, 1), 0);
  EXPECT_DOUBLE_EQ(obs::madOf({1, 2, 3, 4, 5}, 3), 1);
}

TEST(TrendStats, SparklineSpansTheBlocks) {
  const std::string line = obs::sparkline({0, 1, 2, 3});
  EXPECT_NE(line.find("▁"), std::string::npos);
  EXPECT_NE(line.find("█"), std::string::npos);
  EXPECT_EQ(obs::sparkline({}), "");
}

obs::Archive syntheticHistory(const TempDir& dir, double lastSlowdown) {
  obs::Archive archive(dir.path());
  for (int i = 0; i < 5; ++i) {
    archive.addCapture(realisticCapture(261.875), "r" + std::to_string(i));
  }
  archive.addCapture(realisticCapture(261.875, lastSlowdown), "newest");
  return archive;
}

TEST(Trend, CleanHistoryHasNoRegressions) {
  TempDir dir("clean");
  auto archive = syntheticHistory(dir, 1.0);
  const auto report = obs::analyzeTrends(archive);
  EXPECT_GT(report.series.size(), 0u);
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_EQ(report.renderCheck(), "");
}

TEST(Trend, TwentyPercentMakespanJumpIsFlaggedByName) {
  TempDir dir("jump");
  auto archive = syntheticHistory(dir, 1.2);
  const auto report = obs::analyzeTrends(archive);
  EXPECT_GT(report.regressions(), 0u);
  const std::string check = report.renderCheck();
  // The CI gate names the app, config and metric of what regressed.
  EXPECT_NE(check.find("btio"), std::string::npos);
  EXPECT_NE(check.find("Configuration A"), std::string::npos);
  EXPECT_NE(check.find("makespan"), std::string::npos);
  EXPECT_NE(check.find("REGRESSION"), std::string::npos);
  bool sawMakespanRegression = false;
  for (const auto& s : report.series) {
    if (s.metric == "makespan") {
      EXPECT_TRUE(s.regression);
      // Deterministic history: MAD = 0, the relative floor (1% of the
      // median) makes a 20% jump ~20 sigma.
      EXPECT_NEAR(s.deviation, 20.0, 0.5);
      sawMakespanRegression = true;
    }
  }
  EXPECT_TRUE(sawMakespanRegression);
}

TEST(Trend, ImprovementsFlagButAreNotRegressions) {
  TempDir dir("improve");
  auto archive = syntheticHistory(dir, 0.5);
  const auto report = obs::analyzeTrends(archive);
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_GT(report.flaggedSeries(), 0u);
}

TEST(Trend, MinHistoryGatesFlagging) {
  TempDir dir("short");
  obs::Archive archive(dir.path());
  archive.addCapture(realisticCapture(261.875), "a");
  archive.addCapture(realisticCapture(261.875), "b");
  archive.addCapture(realisticCapture(261.875, 3.0), "c");  // 2 priors < 3
  const auto report = obs::analyzeTrends(archive);
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(Trend, BenchSeriesRegressOnRisingNsPerOp) {
  TempDir dir("bench");
  obs::Archive archive(dir.path());
  const auto doc = [](double nsPerOp) {
    std::ostringstream out;
    out << "{\"schema\":\"iop-bench/1\",\"results\":[{\"name\":\"BM_X\","
        << "\"iterations\":10,\"ns_per_op\":" << nsPerOp << "}]}";
    return out.str();
  };
  for (int i = 0; i < 5; ++i) {
    archive.addBench(doc(1000), "engine", "r" + std::to_string(i));
  }
  archive.addBench(doc(1300), "engine", "newest");
  const auto report = obs::analyzeTrends(archive);
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_EQ(report.series[0].metric, "BM_X ns/op");
  EXPECT_TRUE(report.series[0].regression);
}

TEST(Trend, ReportsAreDeterministic) {
  TempDir dir("determ");
  auto archive = syntheticHistory(dir, 1.2);
  const auto a = obs::analyzeTrends(archive);
  const auto b = obs::analyzeTrends(archive);
  EXPECT_EQ(a.renderText(), b.renderText());
  EXPECT_EQ(a.renderCheck(), b.renderCheck());
  EXPECT_EQ(a.renderHtml(), b.renderHtml());
}

TEST(Trend, MetricFilterNarrowsTheReport) {
  TempDir dir("filter");
  auto archive = syntheticHistory(dir, 1.0);
  obs::TrendOptions options;
  options.metricFilter = "makespan";
  const auto report = obs::analyzeTrends(archive, options);
  ASSERT_EQ(report.series.size(), 1u);
  EXPECT_EQ(report.series[0].metric, "makespan");
}

TEST(Trend, HtmlReportIsSelfContained) {
  TempDir dir("html");
  auto archive = syntheticHistory(dir, 1.2);
  const std::string html = obs::analyzeTrends(archive).renderHtml();
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("REGRESSION"), std::string::npos);
  // Single file, no external assets.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("https://"), std::string::npos);
  EXPECT_EQ(html.find("src="), std::string::npos);
}

// --- shared bench JSON parser (hoisted out of benchdiff) ----------------

TEST(BenchJson, SharedParserReadsSnapshots) {
  const auto entries = obs::parseBenchJson(kBenchDoc);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "BM_Engine");
  EXPECT_EQ(entries[0].iterations, 100);
  EXPECT_DOUBLE_EQ(entries[0].nsPerOp, 1250.5);
  EXPECT_DOUBLE_EQ(entries[0].bytesPerSecond, 2000000);
  EXPECT_THROW(obs::parseBenchJson("[]"), std::invalid_argument);
}

}  // namespace
