// iop::sweep — campaign parsing, content-addressed caching, executor
// determinism (-j1 == -jN byte-identical stores), resume and gc.
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/runtime.hpp"
#include "sweep/campaign.hpp"
#include "sweep/executor.hpp"
#include "sweep/hash.hpp"
#include "sweep/postmortem.hpp"
#include "sweep/rank.hpp"
#include "sweep/store.hpp"
#include "sweep/telemetry.hpp"

namespace {

using namespace iop;

// A 12-cell grid (1 model x 2 configs x 2 disk x 3 net factors) over the
// cheap strided example app: the whole campaign evaluates in milliseconds.
constexpr const char* kCampaignText =
    "# comment\n"
    "name sweep-test\n"
    "app example\n"
    "config A\n"
    "config B\n"
    "degrade-disks 1 4\n"
    "degrade-net 1 2 4\n";

sweep::ResolvedCampaign resolveTestCampaign(
    const std::string& text = kCampaignText) {
  return sweep::resolveCampaign(sweep::parseCampaign(text, "."));
}

/// All files under `root` as relative-path -> bytes.
std::map<std::string, std::string> snapshotTree(
    const std::filesystem::path& root) {
  std::map<std::string, std::string> tree;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    tree[entry.path().lexically_relative(root).string()] = buffer.str();
  }
  return tree;
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("iop_sweep_test_" + name)) {
    std::filesystem::remove_all(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(ContentHash, SeparatesFieldBoundaries) {
  sweep::ContentHash ab_c;
  ab_c.update("ab");
  ab_c.update("c");
  sweep::ContentHash a_bc;
  a_bc.update("a");
  a_bc.update("bc");
  EXPECT_NE(ab_c.value(), a_bc.value());
  EXPECT_EQ(ab_c.hex().size(), 16u);
}

TEST(ContentHash, DeterministicAcrossInstances) {
  EXPECT_EQ(sweep::hashHex("payload"), sweep::hashHex("payload"));
  EXPECT_NE(sweep::hashHex("payload"), sweep::hashHex("payloae"));
}

TEST(CampaignParse, GridAndDefaults) {
  auto spec = sweep::parseCampaign(kCampaignText, ".");
  EXPECT_EQ(spec.name, "sweep-test");
  ASSERT_EQ(spec.models.size(), 1u);
  EXPECT_TRUE(spec.models[0].fromApp());
  EXPECT_EQ(spec.models[0].app, "example");
  ASSERT_EQ(spec.configs.size(), 2u);
  EXPECT_EQ(spec.degradeDisks, (std::vector<double>{1, 4}));
  EXPECT_EQ(spec.degradeNet, (std::vector<double>{1, 2, 4}));
  EXPECT_FALSE(spec.multiop);
  EXPECT_EQ(spec.characterize.name, "A");
}

TEST(CampaignParse, RejectsMalformedInput) {
  EXPECT_THROW(sweep::parseCampaign("bogus directive\n", "."),
               std::invalid_argument);
  EXPECT_THROW(sweep::parseCampaign("app no-such-app\nconfig A\n", "."),
               std::invalid_argument);
  EXPECT_THROW(
      sweep::parseCampaign("app example\nconfig A\ndegrade-net 0.5\n", "."),
      std::invalid_argument);
  EXPECT_THROW(sweep::parseCampaign("app example\nconfig Z\n", "."),
               std::invalid_argument);
  // a campaign without models or configs is unusable
  EXPECT_THROW(sweep::parseCampaign("config A\n", "."),
               std::invalid_argument);
  EXPECT_THROW(sweep::parseCampaign("app example\n", "."),
               std::invalid_argument);
}

TEST(CampaignParse, DisambiguatesDuplicateLabels) {
  auto spec = sweep::parseCampaign("app example\nconfig A\nconfig A\n", ".");
  EXPECT_EQ(spec.configs[0].label, "A");
  EXPECT_EQ(spec.configs[1].label, "A#2");
}

TEST(CampaignParse, CanonicalTextIsAFixedPoint) {
  auto spec = sweep::parseCampaign(kCampaignText, ".");
  const std::string canonical = spec.canonicalText();
  // Reparsing the canonical form must not change it (modulo the directives
  // canonicalText intentionally renders differently, so compare via a
  // second render of a fresh parse of the original).
  auto again = sweep::parseCampaign(kCampaignText, ".");
  EXPECT_EQ(canonical, again.canonicalText());
  EXPECT_NE(canonical.find("estimator iop-estimate/2"), std::string::npos);
}

TEST(CellKey, RespondsToEveryInput) {
  const std::string base =
      sweep::cellKey("est/1", "model-text", "config-id", 1.0, 1.0);
  EXPECT_EQ(base,
            sweep::cellKey("est/1", "model-text", "config-id", 1.0, 1.0));
  EXPECT_NE(base,
            sweep::cellKey("est/2", "model-text", "config-id", 1.0, 1.0));
  EXPECT_NE(base,
            sweep::cellKey("est/1", "model-text2", "config-id", 1.0, 1.0));
  EXPECT_NE(base,
            sweep::cellKey("est/1", "model-text", "config-id2", 1.0, 1.0));
  EXPECT_NE(base,
            sweep::cellKey("est/1", "model-text", "config-id", 4.0, 1.0));
  EXPECT_NE(base,
            sweep::cellKey("est/1", "model-text", "config-id", 1.0, 4.0));
}

TEST(CellResultIo, RoundTripsThroughText) {
  sweep::CellResult cell;
  cell.key = "00deadbeef001234";
  cell.modelLabel = "btio np4";  // labels may contain spaces
  cell.configLabel = "Configuration A";
  cell.degradeDisks = 4;
  cell.degradeNet = 1.5;
  cell.estimator = "iop-estimate/2";
  cell.np = 4;
  cell.weightBytes = 123456789;
  cell.timeIo = 12.25;
  cell.iorRuns = 7;
  cell.phases.push_back({1, 1, 1000, 5.5e6, 0.125});
  cell.phases.push_back({2, 1, 2000, 1.0e7, 0.25});

  const auto parsed = sweep::CellResult::parse(cell.render());
  EXPECT_EQ(parsed.render(), cell.render());
  EXPECT_EQ(parsed.modelLabel, cell.modelLabel);
  EXPECT_EQ(parsed.configLabel, cell.configLabel);
  EXPECT_EQ(parsed.phases.size(), 2u);
  EXPECT_DOUBLE_EQ(parsed.timeIo, 12.25);
  EXPECT_DOUBLE_EQ(parsed.phases[0].bandwidthCH, 5.5e6);

  EXPECT_THROW(sweep::CellResult::parse("not a cell"),
               std::invalid_argument);

  const auto capture = sweep::makeCellCapture(parsed);
  EXPECT_EQ(capture.app, cell.modelLabel);
  EXPECT_EQ(capture.config, cell.configLabel);
  EXPECT_DOUBLE_EQ(capture.makespan, cell.timeIo);
  ASSERT_EQ(capture.phases.size(), 2u);
  EXPECT_EQ(capture.phases[1].weightBytes, 2000u);
}

TEST(SweepExecutor, ParallelStoreIsByteIdenticalToSerial) {
  const auto campaign = resolveTestCampaign();
  ASSERT_EQ(campaign.planCells().size(), 12u);

  TempDir serial("serial");
  TempDir parallel("parallel");
  sweep::CampaignStore storeSerial(serial.path());
  sweep::CampaignStore storeParallel(parallel.path());

  sweep::SweepOptions serialOptions;
  serialOptions.jobs = 1;
  const auto serialOutcome =
      sweep::runSweep(campaign, storeSerial, serialOptions);
  EXPECT_EQ(serialOutcome.computed, 12u);
  EXPECT_EQ(serialOutcome.failures, 0u);

  sweep::SweepOptions parallelOptions;
  parallelOptions.jobs = 4;
  const auto parallelOutcome =
      sweep::runSweep(campaign, storeParallel, parallelOptions);
  EXPECT_EQ(parallelOutcome.computed, 12u);
  EXPECT_EQ(parallelOutcome.failures, 0u);

  const auto a = snapshotTree(serial.path());
  const auto b = snapshotTree(parallel.path());
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // identical file sets with identical bytes

  // Identical estimates, cell by cell, in canonical order.
  for (std::size_t i = 0; i < serialOutcome.cells.size(); ++i) {
    EXPECT_EQ(serialOutcome.cells[i].result.render(),
              parallelOutcome.cells[i].result.render());
  }
}

TEST(SweepExecutor, SecondRunIsAllCacheHits) {
  const auto campaign = resolveTestCampaign();
  TempDir dir("cache");
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  options.jobs = 2;

  const auto first = sweep::runSweep(campaign, store, options);
  EXPECT_EQ(first.computed, 12u);
  EXPECT_EQ(first.cacheHits, 0u);

  const auto before = snapshotTree(dir.path());
  const auto second = sweep::runSweep(campaign, store, options);
  EXPECT_EQ(second.computed, 0u);
  EXPECT_EQ(second.cacheHits, 12u);
  EXPECT_EQ(second.iorRuns, 0u);
  EXPECT_EQ(snapshotTree(dir.path()), before);  // nothing rewritten

  // --force recomputes everything and still lands on the same bytes.
  options.force = true;
  const auto forced = sweep::runSweep(campaign, store, options);
  EXPECT_EQ(forced.computed, 12u);
  EXPECT_EQ(snapshotTree(dir.path()), before);
}

TEST(SweepExecutor, ResumesAfterInterruption) {
  const auto campaign = resolveTestCampaign();
  TempDir full("full");
  TempDir killed("killed");
  sweep::SweepOptions options;
  options.jobs = 2;

  sweep::CampaignStore fullStore(full.path());
  sweep::runSweep(campaign, fullStore, options);
  const auto expected = snapshotTree(full.path());

  // Simulate a run killed mid-flight: some cells committed, some missing,
  // no manifest yet.
  sweep::CampaignStore killedStore(killed.path());
  sweep::runSweep(campaign, killedStore, options);
  const auto plan = campaign.planCells();
  std::filesystem::remove(killedStore.cellPath(plan[1].key));
  std::filesystem::remove(killedStore.capturePath(plan[1].key));
  std::filesystem::remove(killedStore.cellPath(plan[7].key));
  std::filesystem::remove(killedStore.capturePath(plan[7].key));
  std::filesystem::remove(killedStore.manifestPath());

  const auto resumed = sweep::runSweep(campaign, killedStore, options);
  EXPECT_EQ(resumed.cacheHits, 10u);
  EXPECT_EQ(resumed.computed, 2u);
  EXPECT_EQ(snapshotTree(killed.path()), expected);
}

TEST(SweepExecutor, RejectsMismatchedStoreUnlessForced) {
  const auto campaign = resolveTestCampaign();
  TempDir dir("mismatch");
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  sweep::runSweep(campaign, store, options);

  const auto other = resolveTestCampaign(
      "name other\napp example\nconfig A\nconfig B\n");
  sweep::CampaignStore reopened(dir.path());
  EXPECT_THROW(sweep::runSweep(other, reopened, options),
               std::runtime_error);

  options.force = true;  // replaces the store and recomputes
  const auto outcome = sweep::runSweep(other, reopened, options);
  EXPECT_EQ(outcome.computed, 2u);
  EXPECT_EQ(outcome.failures, 0u);
}

TEST(SweepExecutor, DeduplicatesIdenticalCells) {
  // "A" twice: distinct labels, identical cache keys -> one evaluation.
  const auto campaign =
      resolveTestCampaign("name dup\napp example\nconfig A\nconfig A\n");
  const auto plan = campaign.planCells();
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].key, plan[1].key);

  TempDir dir("dedup");
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  options.jobs = 2;
  const auto outcome = sweep::runSweep(campaign, store, options);
  EXPECT_EQ(outcome.computed, 2u);  // both cells resolved...
  EXPECT_EQ(outcome.cells[0].result.timeIo,
            outcome.cells[1].result.timeIo);
  EXPECT_EQ(outcome.iorRuns, outcome.cells[0].result.iorRuns);  // ...once
}

TEST(SweepExecutor, DegradationSlowsEstimates) {
  const auto campaign = resolveTestCampaign();
  TempDir dir("degrade");
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  options.jobs = 4;
  const auto outcome = sweep::runSweep(campaign, store, options);

  // For a fixed (model, config), any degradation must not speed I/O up,
  // and degrading both axes must strictly slow the healthy estimate.
  std::map<std::string, std::map<std::pair<double, double>, double>> grid;
  for (const auto& cell : outcome.cells) {
    grid[cell.result.configLabel][{cell.spec.degradeDisks,
                                   cell.spec.degradeNet}] =
        cell.result.timeIo;
  }
  for (const auto& [config, cells] : grid) {
    const double healthy = cells.at({1, 1});
    EXPECT_GT(healthy, 0) << config;
    for (const auto& [factors, timeIo] : cells) {
      EXPECT_GE(timeIo, healthy * 0.999) << config;
    }
    EXPECT_GT(cells.at({4, 4}), healthy) << config;
  }
}

TEST(SweepStore, GcDropsOrphanedCells) {
  const auto campaign = resolveTestCampaign();
  TempDir dir("gc");
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  sweep::runSweep(campaign, store, options);

  std::set<std::string> live;
  const auto plan = campaign.planCells();
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i % 2 == 0) live.insert(plan[i].key);
  }
  // 6 dropped keys x (cell + capture) = 12 files.
  EXPECT_EQ(store.gc(live), 12u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(store.hasCell(plan[i].key), i % 2 == 0);
  }
  EXPECT_EQ(store.gc(live), 0u);  // idempotent
}

TEST(SweepRank, OrdersByTimeIoAndMarksSelection) {
  const auto campaign = resolveTestCampaign();
  TempDir dir("rank");
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  options.jobs = 4;
  const auto outcome = sweep::runSweep(campaign, store, options);

  const auto groups = sweep::rankOutcome(campaign, outcome);
  ASSERT_EQ(groups.size(), 6u);  // 2 disk x 3 net fault scenarios
  for (const auto& group : groups) {
    ASSERT_EQ(group.entries.size(), 2u);
    EXPECT_EQ(group.entries[0].rank, 1u);
    EXPECT_TRUE(group.entries[0].selected);
    EXPECT_FALSE(group.entries[1].selected);
    EXPECT_LE(group.entries[0].cell->result.timeIo,
              group.entries[1].cell->result.timeIo);
  }
  const std::string report = sweep::renderReport(campaign, outcome);
  EXPECT_NE(report.find("<== selected"), std::string::npos);
  EXPECT_NE(report.find("Sweep ranking"), std::string::npos);
}

TEST(SweepConfig, BuildRejectsBadDegradation) {
  const auto campaign = resolveTestCampaign();
  const auto& config = campaign.configs[0];
  EXPECT_THROW(config.build(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW(config.build(1.0, 0.5), std::invalid_argument);
  auto healthy = config.build(1.0, 1.0);
  EXPECT_FALSE(healthy.topology->allNodes().empty());
}

TEST(SweepDigest, GoldenCampaignDigestIsStable) {
  // Captured from the binary-heap scheduler before the calendar queue
  // landed: every cell of a 12-cell campaign, characterization included,
  // must render byte-identical results on the new engine.  The trailing
  // `checksum` seal is stripped before hashing — it is derived from the
  // other bytes, and dropping it keeps the golden value comparable all
  // the way back to stores written before cells were checksummed.
  const auto campaign = resolveTestCampaign(
      "name digest-probe\n"
      "app example\n"
      "config A\n"
      "config B\n"
      "degrade-disks 1 4\n"
      "degrade-net 1 2 4\n");
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& cell : campaign.planCells()) {
    std::string bytes = sweep::evaluateCell(campaign, cell).render();
    const auto seal = bytes.find("\nchecksum ");
    if (seal != std::string::npos) {
      const auto lineEnd = bytes.find('\n', seal + 1);
      bytes.erase(seal, lineEnd - seal);
    }
    for (const unsigned char c : bytes) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  }
  EXPECT_EQ(h, 0x3a83b0aec3e4ac97ULL);
}

TEST(CampaignResolve, ParallelCharacterizationMatchesSerial) {
  // Two app entries so the worker pool has real fan-out; exercised under
  // TSan in CI (tools/ci.sh) to prove the characterization runs share no
  // state.
  const char* text =
      "name par-resolve\n"
      "app example\n"
      "app example np=2\n"
      "config A\n";
  const auto spec = sweep::parseCampaign(text, ".");

  sweep::ResolveOptions serial;
  serial.jobs = 1;
  const auto a = sweep::resolveCampaign(spec, serial);
  sweep::ResolveOptions parallel;
  parallel.jobs = 4;
  const auto b = sweep::resolveCampaign(spec, parallel);

  EXPECT_EQ(a.characterized, 2u);
  EXPECT_EQ(b.characterized, 2u);
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t i = 0; i < a.models.size(); ++i) {
    EXPECT_EQ(a.models[i].label, b.models[i].label);
    EXPECT_EQ(a.models[i].contentText, b.models[i].contentText);
  }
}

TEST(CampaignResolve, ModelCacheAvoidsRecharacterization) {
  TempDir cache("modelcache");
  const auto spec = sweep::parseCampaign(
      "name cached-resolve\napp example\nconfig A\n", ".");
  sweep::ResolveOptions options;
  options.modelCacheDirs.push_back(cache.path());

  const auto first = sweep::resolveCampaign(spec, options);
  EXPECT_EQ(first.characterized, 1u);
  EXPECT_EQ(first.modelCacheHits, 0u);

  const auto second = sweep::resolveCampaign(spec, options);
  EXPECT_EQ(second.characterized, 0u);
  EXPECT_EQ(second.modelCacheHits, 1u);
  // The cached model round-trips to the same canonical text, so cell keys
  // are unchanged.
  ASSERT_EQ(first.models.size(), 1u);
  ASSERT_EQ(second.models.size(), 1u);
  EXPECT_EQ(first.models[0].contentText, second.models[0].contentText);
  ASSERT_EQ(first.planCells().size(), second.planCells().size());
  EXPECT_EQ(first.planCells()[0].key, second.planCells()[0].key);

  // reuse=false ignores the cache and characterizes again.
  sweep::ResolveOptions fresh = options;
  fresh.reuse = false;
  const auto third = sweep::resolveCampaign(spec, fresh);
  EXPECT_EQ(third.characterized, 1u);
  EXPECT_EQ(third.modelCacheHits, 0u);
  EXPECT_EQ(third.models[0].contentText, first.models[0].contentText);
}

TEST(SweepExecutor, SharedStoreReusesAcrossCampaigns) {
  TempDir shared("sharedpool");
  const auto first = resolveTestCampaign(
      "name shared-a\napp example\nconfig A\nconfig B\n");
  const auto second = resolveTestCampaign(
      "name shared-b\napp example\nconfig B\nconfig C\n");

  sweep::SweepOptions options;
  options.jobs = 2;
  options.sharedStore = shared.path().string();

  TempDir storeA("shared_s1");
  sweep::CampaignStore s1(storeA.path());
  const auto outcomeA = sweep::runSweep(first, s1, options);
  EXPECT_EQ(outcomeA.computed, 2u);
  EXPECT_EQ(outcomeA.sharedHits, 0u);

  // The overlapping cell (example @ B) comes out of the shared pool.
  TempDir storeB("shared_s2");
  sweep::CampaignStore s2(storeB.path());
  const auto outcomeB = sweep::runSweep(second, s2, options);
  EXPECT_EQ(outcomeB.computed, 1u);
  EXPECT_EQ(outcomeB.cacheHits, 1u);
  EXPECT_EQ(outcomeB.sharedHits, 1u);

  // A third store for the same campaign is served entirely from the pool
  // and ends up byte-identical to the computed one.
  TempDir storeC("shared_s3");
  sweep::CampaignStore s3(storeC.path());
  const auto outcomeC = sweep::runSweep(second, s3, options);
  EXPECT_EQ(outcomeC.computed, 0u);
  EXPECT_EQ(outcomeC.cacheHits, 2u);
  EXPECT_EQ(outcomeC.sharedHits, 2u);
  EXPECT_EQ(snapshotTree(storeB.path()), snapshotTree(storeC.path()));

  // Adopted cells pass the store's key check when read back.
  sweep::SharedStore pool(shared.path());
  for (const auto& cell : second.planCells()) {
    ASSERT_TRUE(pool.hasCell(cell.key));
    EXPECT_EQ(pool.loadCell(cell.key).key, cell.key);
  }
}

// ------------------------------------------------------ fault axis

/// Write `text` to `dir/name` and return the path.
std::filesystem::path writeFile(const std::filesystem::path& dir,
                                const std::string& name,
                                const std::string& text) {
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::ofstream out(path, std::ios::binary);
  out << text;
  return path;
}

constexpr const char* kFlakyPlanText =
    "policy timeout=20ms retries=6 backoff=1ms max-backoff=32ms "
    "jitter=0.25\n"
    "disk * transient-error p=0.2\n";

/// A campaign with a fault axis: healthy baseline + 2 seeded replicas of
/// a flaky-disk plan, over 2 configs -> 2 * (1 + 2) = 6 cells.
sweep::ResolvedCampaign resolveFaultCampaign(const TempDir& dir) {
  writeFile(dir.path(), "flaky.fault", kFlakyPlanText);
  const std::string text =
      "name fault-axis\n"
      "app example\n"
      "config A\n"
      "config B\n"
      "faultplan none\n"
      "faultplan file=flaky.fault\n"
      "fault-seeds 2\n";
  return sweep::resolveCampaign(sweep::parseCampaign(text, dir.path()));
}

TEST(CampaignParse, FaultAxisParsesAndCanonicalizes) {
  TempDir dir("faultparse");
  const auto campaign = resolveFaultCampaign(dir);
  ASSERT_EQ(campaign.spec.faults.size(), 2u);
  EXPECT_TRUE(campaign.spec.faults[0].none());
  EXPECT_EQ(campaign.spec.faults[1].label, "flaky");
  EXPECT_EQ(campaign.spec.faultSeeds, 2);
  EXPECT_TRUE(campaign.spec.hasFaultAxis());
  ASSERT_EQ(campaign.faults.size(), 2u);
  EXPECT_FALSE(campaign.faults[1].planText.empty());

  const std::string canonical = campaign.spec.canonicalText();
  EXPECT_NE(canonical.find("faultplan none none"), std::string::npos);
  EXPECT_NE(canonical.find("fault-seeds 2"), std::string::npos);

  // 2 configs x (healthy + 2 seeded flaky replicas).
  const auto plan = campaign.planCells();
  ASSERT_EQ(plan.size(), 6u);
  std::size_t faulted = 0;
  for (const auto& cell : plan) {
    if (!cell.faulted()) continue;
    ++faulted;
    EXPECT_NE(campaign.cellTitle(cell).find("fault=flaky"),
              std::string::npos);
  }
  EXPECT_EQ(faulted, 4u);

  // Malformed fault directives fail loudly.
  EXPECT_THROW(sweep::parseCampaign(
                   "app example\nconfig A\nfaultplan bogus\n", "."),
               std::invalid_argument);
  EXPECT_THROW(sweep::parseCampaign(
                   "app example\nconfig A\nfault-seeds 0\n", "."),
               std::invalid_argument);
}

TEST(CampaignParse, NoFaultAxisKeepsLegacyIdentity) {
  // A campaign that never mentions faults must canonicalize and key
  // byte-identically to pre-fault stores (the back-compat gate).
  auto spec = sweep::parseCampaign(kCampaignText, ".");
  EXPECT_FALSE(spec.hasFaultAxis());
  EXPECT_EQ(spec.canonicalText().find("faultplan"), std::string::npos);
  EXPECT_EQ(spec.canonicalText().find("fault-seeds"), std::string::npos);
  EXPECT_EQ(sweep::cellKey("est/1", "m", "c", 1.0, 1.0),
            sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "", 0));
}

TEST(CellKey, RespondsToFaultPlanAndSeed) {
  const std::string base =
      sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "plan-a", 1);
  EXPECT_EQ(base, sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "plan-a", 1));
  EXPECT_NE(base, sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "plan-b", 1));
  EXPECT_NE(base, sweep::cellKey("est/1", "m", "c", 1.0, 1.0, "plan-a", 2));
  EXPECT_NE(base, sweep::cellKey("est/1", "m", "c", 1.0, 1.0));
}

TEST(SweepExecutor, FaultAxisEndToEndDeterministicAndCached) {
  TempDir dir("faultaxis");
  const auto campaign = resolveFaultCampaign(dir);

  TempDir serial("fault_serial");
  TempDir parallel("fault_parallel");
  sweep::CampaignStore storeSerial(serial.path());
  sweep::CampaignStore storeParallel(parallel.path());

  sweep::SweepOptions options;
  options.jobs = 1;
  const auto first = sweep::runSweep(campaign, storeSerial, options);
  EXPECT_EQ(first.computed, 6u);
  EXPECT_EQ(first.failures, 0u);

  options.jobs = 4;
  const auto par = sweep::runSweep(campaign, storeParallel, options);
  EXPECT_EQ(par.computed, 6u);
  // Same plan + seed must land on bit-identical stores at any -j.
  EXPECT_EQ(snapshotTree(serial.path()), snapshotTree(parallel.path()));

  // Faulted replicas hit the cache like any other cell.
  const auto second = sweep::runSweep(campaign, storeSerial, options);
  EXPECT_EQ(second.computed, 0u);
  EXPECT_EQ(second.cacheHits, 6u);

  // Faulted cells carry their accounting through the store round-trip.
  bool sawFaulted = false;
  for (const auto& cell : second.cells) {
    if (!cell.spec.faulted()) continue;
    sawFaulted = true;
    EXPECT_EQ(cell.result.estimator, sweep::kFaultEstimatorVersion);
    EXPECT_EQ(cell.result.faultLabel, "flaky");
    EXPECT_EQ(cell.result.faultSeed, cell.spec.faultSeed);
    EXPECT_GT(cell.result.faultRetries, 0u);
    EXPECT_EQ(cell.result.iorRuns, 0u);  // degraded cells never run IOR
  }
  EXPECT_TRUE(sawFaulted);

  // Ranking: healthy group + faulted group, the latter aggregated over
  // seeds and ranked by median degraded Time_io.
  const auto groups = sweep::rankOutcome(campaign, second);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_FALSE(groups[0].faulted);
  EXPECT_TRUE(groups[1].faulted);
  ASSERT_EQ(groups[1].entries.size(), 2u);
  for (const auto& entry : groups[1].entries) {
    EXPECT_EQ(entry.seeds, 2u);
    EXPECT_EQ(entry.okSeeds, 2u);
    EXPECT_GT(entry.timeIo, 0.0);
  }
  EXPECT_LE(groups[1].entries[0].timeIo, groups[1].entries[1].timeIo);
  const std::string report = sweep::renderReport(campaign, second);
  EXPECT_NE(report.find("[fault=flaky]"), std::string::npos);
  EXPECT_NE(report.find("median Time_io (s)"), std::string::npos);
  EXPECT_NE(report.find("seeds ok"), std::string::npos);
}

// -------------------------------------------------- store integrity

TEST(SweepStore, ChecksumSealsEveryCell) {
  sweep::CellResult cell;
  cell.key = "00deadbeef001234";
  cell.modelLabel = "m";
  cell.configLabel = "c";
  cell.estimator = "iop-estimate/2";
  cell.timeIo = 12.25;
  const std::string text = cell.render();
  EXPECT_NE(text.find("\nchecksum "), std::string::npos);
  // The rendered text round-trips; a flipped digit inside a value does
  // not parse even though the line itself is still well-formed.
  EXPECT_EQ(sweep::CellResult::parse(text).render(), text);
  std::string tampered = text;
  const auto pos = tampered.find("12.25");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos] = '9';
  try {
    sweep::CellResult::parse(tampered);
    FAIL() << "tampered cell must not parse";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  // Legacy cells (written before checksums) still load.
  std::string legacy = text;
  const auto sumPos = legacy.find("\nchecksum ");
  legacy = legacy.substr(0, sumPos + 1) + "end\n";
  EXPECT_DOUBLE_EQ(sweep::CellResult::parse(legacy).timeIo, 12.25);
}

TEST(SweepStore, CorruptCellsAreQuarantinedAndRecomputed) {
  const auto campaign = resolveTestCampaign(
      "name quarantine\napp example\nconfig A\nconfig B\n");
  TempDir dir("quarantine");
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  sweep::runSweep(campaign, store, options);
  const auto expected = snapshotTree(dir.path());

  // Torn write: truncate one committed cell mid-file.
  const auto plan = campaign.planCells();
  const auto victim = store.cellPath(plan[0].key);
  std::string bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  std::ofstream(victim, std::ios::binary) << bytes.substr(0, bytes.size() / 2);

  std::string whyBad;
  EXPECT_FALSE(store.tryLoadCell(plan[0].key, &whyBad).has_value());
  EXPECT_FALSE(whyBad.empty());
  EXPECT_FALSE(std::filesystem::exists(victim));  // moved aside...
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "quarantine"));

  // ...and the next run recomputes it, converging back on the same bytes
  // (minus the quarantine folder).
  const auto outcome = sweep::runSweep(campaign, store, options);
  EXPECT_EQ(outcome.computed, 1u);
  EXPECT_EQ(outcome.quarantined, 0u);  // already quarantined above
  EXPECT_EQ(outcome.failures, 0u);
  auto after = snapshotTree(dir.path());
  for (auto it = after.begin(); it != after.end();) {
    it = it->first.rfind("quarantine/", 0) == 0 ? after.erase(it) : ++it;
  }
  EXPECT_EQ(after, expected);
}

// ------------------------------------------------- graceful shutdown

TEST(SweepExecutor, CancelSkipsUntakenCellsAndResumeConverges) {
  const auto campaign = resolveTestCampaign(
      "name cancel\napp example\nconfig A\nconfig B\n"
      "degrade-disks 1 4\n");
  ASSERT_EQ(campaign.planCells().size(), 4u);

  TempDir full("cancel_full");
  sweep::CampaignStore fullStore(full.path());
  sweep::SweepOptions plain;
  sweep::runSweep(campaign, fullStore, plain);
  const auto expected = snapshotTree(full.path());

  // Cancel after the first completed cell: in-flight work is committed,
  // untaken cells are reported skipped, and the exit is resumable.
  TempDir killed("cancel_killed");
  sweep::CampaignStore killedStore(killed.path());
  std::atomic<bool> cancel{false};
  sweep::SweepOptions interruptible;
  interruptible.jobs = 1;
  interruptible.cancel = &cancel;
  interruptible.onCellDone = [&](const sweep::CellOutcome&) {
    cancel.store(true);
  };
  const auto interrupted =
      sweep::runSweep(campaign, killedStore, interruptible);
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_FALSE(interrupted.ok());
  EXPECT_EQ(interrupted.computed, 1u);
  EXPECT_EQ(interrupted.skipped, 3u);
  std::size_t skippedCells = 0;
  for (const auto& cell : interrupted.cells) {
    if (cell.status == sweep::CellOutcome::Status::Skipped) {
      ++skippedCells;
      EXPECT_NE(cell.error.find("resume"), std::string::npos);
    }
  }
  EXPECT_EQ(skippedCells, 3u);

  // Resume finishes the remainder and lands on the uninterrupted bytes.
  const auto resumed = sweep::runSweep(campaign, killedStore, plain);
  EXPECT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.cacheHits, 1u);
  EXPECT_EQ(resumed.computed, 3u);
  EXPECT_EQ(snapshotTree(killed.path()), expected);
}

// --- runtime telemetry --------------------------------------------------

TEST(RuntimeTelemetry, ConcurrentInstrumentUpdatesAreLossless) {
  // The hot-path contract: any number of workers may hammer the same
  // counter / gauge / histogram concurrently without losing updates.
  // (The TSan CI flavor builds exactly this test binary.)
  obs::RuntimeMetrics metrics;
  auto& counter = metrics.counter("sweep.cells");
  auto& gauge = metrics.gauge("sim.arena_bytes");
  auto& hist =
      metrics.histogram("sweep.replay_seconds", {0.001, 0.01, 0.1});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        gauge.add(1.0);
        hist.observe(0.005 * ((t + i) % 3 + 1));
        // Registration while others increment must also be safe.
        metrics.counter("sweep.computed").add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  const auto total =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(counter.value(), total);
  EXPECT_EQ(metrics.counter("sweep.computed").value(), total);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(total));
  EXPECT_EQ(hist.count(), total);
  std::uint64_t bucketSum = 0;
  for (const auto c : hist.bucketCounts()) bucketSum += c;
  EXPECT_EQ(bucketSum, total);
}

TEST(RuntimeTelemetry, ProgressMeterCountsEvaluatedCellsOnly) {
  // Satellite invariant: cache/shared hits never inflate `done`, so a
  // resume that recomputes 4 of 10 cells reports 0..4, not 6..10.
  sweep::ProgressMeter meter(false);
  // 10 cells, 6 already served from caches (2 of those via the shared
  // store), 4 pending for evaluation on 2 workers.
  meter.begin(/*cells=*/10, /*cached=*/6, /*shared=*/2, /*pending=*/4,
              /*workers=*/2);
  EXPECT_EQ(meter.doneCells(), 0u);
  EXPECT_DOUBLE_EQ(meter.hitRate(), 0.6);
  meter.claim();
  meter.cellDone(2.0, /*failed=*/false);
  meter.release();
  meter.claim();
  meter.cellDone(4.0, /*failed=*/true);  // failures still count as done
  meter.release();
  EXPECT_EQ(meter.doneCells(), 2u);
  // EWMA (alpha = 0.3) seeded by the first sample: 0.3*4 + 0.7*2 = 2.6.
  EXPECT_NEAR(meter.ewmaSeconds(), 2.6, 1e-9);
  // 2 pending cells left across 2 workers -> one EWMA interval.
  EXPECT_NEAR(meter.etaSeconds(), 2.6, 1e-9);
  const std::string line = meter.renderLine();
  EXPECT_NE(line.find("2/4"), std::string::npos);
  meter.finish();
}

TEST(RuntimeTelemetry, SweepWithTelemetryIsByteIdenticalToWithout) {
  // The subsystem's reason to exist is that it may not exist: a store
  // written with the full telemetry stack on must be byte-identical to
  // one written with it off, journal directory aside.
  const auto campaign = resolveTestCampaign();
  TempDir plainDir("tele_off");
  TempDir teleDir("tele_on");
  TempDir sidecars("tele_sidecars");
  std::filesystem::create_directories(sidecars.path());

  sweep::CampaignStore plainStore(plainDir.path());
  sweep::SweepOptions plainOptions;
  plainOptions.jobs = 3;
  const auto plain = sweep::runSweep(campaign, plainStore, plainOptions);
  EXPECT_EQ(plain.computed, 12u);

  sweep::TelemetryConfig config;
  config.journalPath =
      (teleDir.path() / "journal" / "run-1-1.jsonl").string();
  config.telemetryOut = (sidecars.path() / "metrics.prom").string();
  config.telemetryIntervalMs = 10;
  config.execTraceOut = (sidecars.path() / "trace.json").string();
  sweep::SweepTelemetry telemetry(config);
  telemetry.campaignStart(campaign.spec.name,
                          sweep::hashHex(campaign.spec.canonicalText()),
                          3);
  sweep::CampaignStore teleStore(teleDir.path());
  sweep::SweepOptions teleOptions;
  teleOptions.jobs = 3;
  teleOptions.telemetry = &telemetry;
  const auto instrumented =
      sweep::runSweep(campaign, teleStore, teleOptions);
  EXPECT_EQ(instrumented.computed, 12u);
  telemetry.finish();

  auto observed = snapshotTree(teleDir.path());
  std::size_t journalFiles = 0;
  for (auto it = observed.begin(); it != observed.end();) {
    if (it->first.rfind("journal", 0) == 0) {
      ++journalFiles;
      it = observed.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(journalFiles, 1u);
  EXPECT_EQ(observed, snapshotTree(plainDir.path()));

  // Identical estimates cell by cell, and the sidecar files materialized.
  for (std::size_t i = 0; i < plain.cells.size(); ++i) {
    EXPECT_EQ(plain.cells[i].result.render(),
              instrumented.cells[i].result.render());
  }
  EXPECT_TRUE(
      std::filesystem::exists(sidecars.path() / "metrics.prom"));
  EXPECT_TRUE(std::filesystem::exists(sidecars.path() / "trace.json"));

  // The journal both parses and analyzes as a complete, healthy run.
  const auto parsed = obs::loadJournal(config.journalPath);
  EXPECT_EQ(parsed.badLines, 0u);
  const auto pm = sweep::analyzeJournal(parsed);
  EXPECT_TRUE(pm.complete);
  EXPECT_FALSE(pm.interrupted);
  EXPECT_EQ(pm.commits, 12u);
  EXPECT_EQ(pm.campaign, "sweep-test");
  EXPECT_TRUE(pm.inFlight.empty());

  // Metrics agree with the executor's own accounting.
  const auto* computed =
      telemetry.runtime().findCounter("sweep.computed");
  ASSERT_NE(computed, nullptr);
  EXPECT_EQ(computed->value(), 12u);
  const auto* commits = telemetry.runtime().findCounter("store.cell_commits");
  ASSERT_NE(commits, nullptr);
  EXPECT_EQ(commits->value(), 12u);
}

TEST(Postmortem, ReconstructsInFlightCellsFromTornJournal) {
  // A journal as a SIGKILLed -j2 run leaves it: two claims open, one
  // commit, one failure, and a torn final line.
  const std::string journal =
      "{\"t\":0.0,\"event\":\"journal_start\",\"schema\":\"iop-journal/1\","
      "\"unix_ms\":1700000000000,\"pid\":4242}\n"
      "{\"t\":0.1,\"event\":\"campaign_start\",\"campaign\":\"pm-test\","
      "\"config\":\"deadbeefdeadbeef\",\"jobs\":2}\n"
      "{\"t\":0.2,\"event\":\"exec_start\",\"cells\":6,\"cached\":1,"
      "\"shared\":0,\"pending\":5,\"workers\":2}\n"
      "{\"t\":0.2,\"event\":\"cache_hit\",\"cell\":\"m @ A\",\"key\":\"k0\"}\n"
      "{\"t\":0.3,\"event\":\"worker_spawn\",\"worker\":0}\n"
      "{\"t\":0.3,\"event\":\"cell_claim\",\"worker\":0,\"cell\":\"m @ B\","
      "\"key\":\"k1\"}\n"
      "{\"t\":0.3,\"event\":\"worker_spawn\",\"worker\":1}\n"
      "{\"t\":0.4,\"event\":\"cell_claim\",\"worker\":1,\"cell\":\"m @ C\","
      "\"key\":\"k2\"}\n"
      "{\"t\":0.9,\"event\":\"cell_commit\",\"worker\":0,\"cell\":\"m @ B\","
      "\"key\":\"k1\",\"seconds\":0.6,\"commit_seconds\":0.01,"
      "\"time_io\":12.5,\"ior_runs\":2,\"faulted\":false}\n"
      "{\"t\":1.0,\"event\":\"cell_claim\",\"worker\":0,\"cell\":\"m @ D\","
      "\"key\":\"k3\"}\n"
      "{\"t\":1.1,\"event\":\"cell_failed\",\"worker\":1,\"cell\":\"m @ C\","
      "\"key\":\"k2\",\"seconds\":0.7,\"error\":\"boom\"}\n"
      "{\"t\":1.2,\"event\":\"cell_claim\",\"worker\":1,\"cell\":\"m @ E\","
      "\"key\":\"k4\"}\n"
      "{\"t\":1.3,\"event\":\"cell_com";  // torn by the kill
  const auto pm = sweep::analyzeJournal(obs::parseJournal(journal));
  EXPECT_EQ(pm.schema, "iop-journal/1");
  EXPECT_EQ(pm.pid, 4242);
  EXPECT_EQ(pm.campaign, "pm-test");
  EXPECT_EQ(pm.jobs, 2);
  EXPECT_EQ(pm.cells, 6u);
  EXPECT_EQ(pm.pending, 5u);
  EXPECT_EQ(pm.workers, 2u);
  EXPECT_EQ(pm.cacheHits, 1u);
  EXPECT_EQ(pm.claims, 4u);
  EXPECT_EQ(pm.commits, 1u);
  EXPECT_EQ(pm.failures, 1u);
  EXPECT_EQ(pm.badLines, 1u);
  EXPECT_FALSE(pm.complete);
  EXPECT_EQ(pm.lastEventName, "cell_claim");
  ASSERT_EQ(pm.inFlight.size(), 2u);  // claimed, never resolved
  EXPECT_EQ(pm.inFlight[0].cell, "m @ D");
  EXPECT_EQ(pm.inFlight[0].worker, 0u);
  EXPECT_EQ(pm.inFlight[1].cell, "m @ E");
  EXPECT_EQ(pm.inFlight[1].worker, 1u);

  const std::string report = sweep::renderPostmortem(pm, "j.jsonl");
  EXPECT_NE(report.find("INCOMPLETE"), std::string::npos);
  EXPECT_NE(report.find("m @ D"), std::string::npos);
  EXPECT_NE(report.find("m @ E"), std::string::npos);
  EXPECT_NE(report.find("resume"), std::string::npos);

  // A journal ending in run_complete analyzes as complete.
  const auto done = sweep::analyzeJournal(obs::parseJournal(
      "{\"t\":0.0,\"event\":\"journal_start\",\"schema\":\"iop-journal/1\","
      "\"unix_ms\":1,\"pid\":1}\n"
      "{\"t\":0.5,\"event\":\"run_complete\",\"cells\":6,\"cache_hits\":1,"
      "\"shared_hits\":0,\"computed\":5,\"failures\":0,\"skipped\":0,"
      "\"quarantined\":0,\"interrupted\":false,\"wall_seconds\":0.5}\n"));
  EXPECT_TRUE(done.complete);
  EXPECT_FALSE(done.interrupted);
  const std::string okReport = sweep::renderPostmortem(done, "j.jsonl");
  EXPECT_NE(okReport.find("run complete"), std::string::npos);
}

TEST(Postmortem, NewestJournalPicksLargestTimestamp) {
  TempDir dir("journal_pick");
  const auto journalDir = dir.path() / "journal";
  std::filesystem::create_directories(journalDir);
  EXPECT_EQ(sweep::newestJournal(dir.path()), std::filesystem::path{});
  std::ofstream(journalDir / "run-999-1.jsonl") << "";
  std::ofstream(journalDir / "run-1700000000001-9.jsonl") << "";
  std::ofstream(journalDir / "run-1700000000002-3.jsonl") << "";
  std::ofstream(journalDir / "notes.txt") << "";  // ignored
  EXPECT_EQ(sweep::newestJournal(dir.path()).filename().string(),
            "run-1700000000002-3.jsonl");
}

/// Set an environment variable for the lifetime of one scope.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

std::string readFileText(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SweepWatchdog, SoftDeadlineJournalsSlowCellsWithoutFailingThem) {
  // One cell, delayed 300ms past a 50ms soft deadline: the run journals
  // cell_slow (and bumps the slow-cell instruments) but the cell still
  // commits normally.
  const auto campaign =
      resolveTestCampaign("name tiny\napp example\nconfig A\n");
  ASSERT_EQ(campaign.planCells().size(), 1u);
  TempDir dir("watchdog_soft");
  ScopedEnv delay("IOP_SWEEP_TEST_CELL_DELAY_ONCE_MS", "300");

  sweep::TelemetryConfig config;
  config.journalPath = (dir.path() / "journal" / "run-1-1.jsonl").string();
  sweep::SweepTelemetry telemetry(config);
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  options.softDeadlineSeconds = 0.05;
  options.telemetry = &telemetry;
  const auto outcome = sweep::runSweep(campaign, store, options);
  telemetry.finish();

  EXPECT_EQ(outcome.computed, 1u);
  EXPECT_EQ(outcome.failures, 0u);
  EXPECT_EQ(outcome.stuck, 0u);
  const std::string journal = readFileText(config.journalPath);
  EXPECT_NE(journal.find("cell_slow"), std::string::npos);
  EXPECT_EQ(journal.find("cell_stuck"), std::string::npos);
  const auto* slow = telemetry.runtime().findCounter("sweep.cells_slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->value(), 1u);
}

TEST(SweepWatchdog, HardDeadlineAbandonsOnceThenRetrySucceeds) {
  // Attempt 1 sleeps 600ms against a 150ms hard deadline and is
  // abandoned; the retry (no delay) succeeds, so the run completes with
  // stuck=1, no failures, a quarantine marker, and — the core invariant
  // — a store byte-identical to one written with the watchdog off.
  const auto campaign =
      resolveTestCampaign("name tiny\napp example\nconfig A\n");
  TempDir plain("watchdog_off");
  sweep::CampaignStore plainStore(plain.path());
  sweep::runSweep(campaign, plainStore, {});
  const auto expected = snapshotTree(plain.path());

  TempDir dir("watchdog_hard");
  ScopedEnv delay("IOP_SWEEP_TEST_CELL_DELAY_ONCE_MS", "600");
  sweep::TelemetryConfig config;
  config.journalPath = (dir.path() / "journal" / "run-1-1.jsonl").string();
  sweep::SweepTelemetry telemetry(config);
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  options.hardDeadlineSeconds = 0.15;
  options.telemetry = &telemetry;
  const auto outcome = sweep::runSweep(campaign, store, options);
  telemetry.finish();

  EXPECT_EQ(outcome.stuck, 1u);
  EXPECT_EQ(outcome.computed, 1u);
  EXPECT_EQ(outcome.failures, 0u);
  EXPECT_EQ(outcome.cells[0].status,
            sweep::CellOutcome::Status::Computed);
  const std::string key = campaign.planCells()[0].key;
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "quarantine" /
                                      (key + ".stuck.1")));

  // Byte-identical store, the stuck marker and journal aside.
  auto observed = snapshotTree(dir.path());
  for (auto it = observed.begin(); it != observed.end();) {
    if (it->first.rfind("journal", 0) == 0 ||
        it->first.rfind("quarantine", 0) == 0) {
      it = observed.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(observed, expected);

  // The journal records the abandonment and the postmortem counts it
  // without leaving the claim open.
  const std::string journal = readFileText(config.journalPath);
  EXPECT_NE(journal.find("cell_stuck"), std::string::npos);
  const auto pm =
      sweep::analyzeJournal(obs::loadJournal(config.journalPath));
  EXPECT_EQ(pm.stuck, 1u);
  EXPECT_TRUE(pm.inFlight.empty());
  const auto* stuck = telemetry.runtime().findCounter("sweep.cells_stuck");
  ASSERT_NE(stuck, nullptr);
  EXPECT_EQ(stuck->value(), 1u);

  // The abandoned evaluation thread may still be sleeping; give it time
  // to drain before the campaign (which it references) is destroyed.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
}

TEST(SweepWatchdog, SecondTimeoutFailsTheCellTerminally) {
  // Both attempts overrun the deadline: the cell fails with a "stuck"
  // error instead of retrying forever.
  const auto campaign =
      resolveTestCampaign("name tiny\napp example\nconfig A\n");
  TempDir dir("watchdog_terminal");
  ScopedEnv delay("IOP_SWEEP_TEST_CELL_DELAY_MS", "500");
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  options.hardDeadlineSeconds = 0.1;
  const auto outcome = sweep::runSweep(campaign, store, options);

  EXPECT_EQ(outcome.stuck, 2u);  // both attempts
  EXPECT_EQ(outcome.failures, 1u);
  EXPECT_EQ(outcome.cells[0].status, sweep::CellOutcome::Status::Failed);
  EXPECT_NE(outcome.cells[0].error.find("stuck"), std::string::npos);
  const std::string key = campaign.planCells()[0].key;
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "quarantine" /
                                      (key + ".stuck.2")));
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
}

#ifdef __linux__
TEST(RuntimeTelemetry, JournalDisablesItselfOnDiskFullInsteadOfThrowing) {
  // /dev/full accepts the open and fails every flush with ENOSPC — the
  // exact failure mode the journal must absorb: one stderr warning, the
  // disabled flag, and the run carries on.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  obs::RunJournal journal("/dev/full");
  journal.event("campaign_start", "\"campaign\":\"x\"");
  EXPECT_TRUE(journal.disabled());
  journal.event("cell_commit");  // silently dropped, no throw
  EXPECT_TRUE(journal.disabled());
}

TEST(RuntimeTelemetry, SweepSurvivesJournalOnFullDisk) {
  // End to end: a full-disk journal never fails the campaign, and the
  // one-time sweep.journal_disabled counter records that it happened.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  const auto campaign = resolveTestCampaign();
  TempDir dir("journal_enospc");
  sweep::TelemetryConfig config;
  config.journalPath = "/dev/full";
  sweep::SweepTelemetry telemetry(config);
  telemetry.campaignStart(campaign.spec.name, "cfg", 2);
  sweep::CampaignStore store(dir.path());
  sweep::SweepOptions options;
  options.jobs = 2;
  options.telemetry = &telemetry;
  const auto outcome = sweep::runSweep(campaign, store, options);
  telemetry.finish();

  EXPECT_EQ(outcome.computed, 12u);
  EXPECT_EQ(outcome.failures, 0u);
  ASSERT_NE(telemetry.journal(), nullptr);
  EXPECT_TRUE(telemetry.journal()->disabled());
  const auto* disabled =
      telemetry.runtime().findCounter("sweep.journal_disabled");
  ASSERT_NE(disabled, nullptr);
  EXPECT_EQ(disabled->value(), 1u);  // noted once, not once per event
}
#endif  // __linux__

}  // namespace
