#include <gtest/gtest.h>

#include "configs/configs.hpp"
#include "ior/ior.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

namespace iop::ior {
namespace {

using configs::ConfigId;
using iop::util::MiB;

IorParams baseParams(const configs::ClusterConfig& cfg) {
  IorParams p;
  p.mount = cfg.mount;
  p.blockSize = 16 * MiB;
  p.transferSize = 1 * MiB;
  p.np = 4;
  return p;
}

TEST(Ior, WriteReadBandwidthsPositiveAndBounded) {
  auto cfg = configs::makeConfig(ConfigId::A);
  auto result = runIor(cfg, baseParams(cfg));
  EXPECT_GT(result.writeBandwidth, 10.0e6);
  EXPECT_LT(result.writeBandwidth, 117.0e6 * 1.3);  // <= wire speed-ish
  EXPECT_GT(result.readBandwidth, 10.0e6);
  EXPECT_EQ(result.totalBytes, 4ull * 16 * MiB);
  EXPECT_GT(result.writeOpsPerSec, 0.0);
}

TEST(Ior, SegmentsMultiplyData) {
  auto cfg = configs::makeConfig(ConfigId::A);
  auto p = baseParams(cfg);
  p.segments = 3;
  auto result = runIor(cfg, p);
  EXPECT_EQ(result.totalBytes, 3ull * 4 * 16 * MiB);
}

TEST(Ior, CollectiveModeRuns) {
  auto cfg = configs::makeConfig(ConfigId::A);
  auto p = baseParams(cfg);
  p.collective = true;
  auto result = runIor(cfg, p);
  EXPECT_GT(result.writeBandwidth, 0.0);
  EXPECT_GT(result.readBandwidth, 0.0);
}

TEST(Ior, UniqueFilePerProcRuns) {
  auto cfg = configs::makeConfig(ConfigId::B);
  auto p = baseParams(cfg);
  p.uniqueFilePerProc = true;
  auto result = runIor(cfg, p);
  EXPECT_GT(result.writeBandwidth, 0.0);
}

TEST(Ior, RandomSlowerThanSequentialOnDiskBoundConfig) {
  // Config B (JBOD single disks) is device-bound: random transfer order
  // forces seeks and must not be faster than sequential.
  auto mk = [] {
    auto cfg = configs::makeConfig(ConfigId::B);
    IorParams p;
    p.mount = cfg.mount;
    p.blockSize = 256 * MiB;
    p.transferSize = 256 * 1024;
    p.np = 2;
    return std::make_pair(std::move(cfg), p);
  };
  auto [cfgSeq, pSeq] = mk();
  auto seq = runIor(cfgSeq, pSeq);
  auto [cfgRnd, pRnd] = mk();
  pRnd.accessMode = AccessMode::Random;
  auto rnd = runIor(cfgRnd, pRnd);
  EXPECT_LE(rnd.readBandwidth, seq.readBandwidth * 1.05);
}

TEST(Ior, DropCachesMakesReadsColdOnSmallFiles) {
  auto mk = [](bool drop) {
    auto cfg = configs::makeConfig(ConfigId::A);
    IorParams p;
    p.mount = cfg.mount;
    p.blockSize = 32 * MiB;  // fits comfortably in the server cache
    p.transferSize = 1 * MiB;
    p.np = 2;
    p.dropCachesBeforeRead = drop;
    return runIor(cfg, p);
  };
  auto cold = mk(true);
  auto warm = mk(false);
  EXPECT_GT(warm.readBandwidth, cold.readBandwidth);
}

TEST(Ior, RejectsBadParameters) {
  auto cfg = configs::makeConfig(ConfigId::A);
  auto p = baseParams(cfg);
  p.transferSize = 3 * MiB;  // does not divide blockSize
  EXPECT_THROW(runIor(cfg, p), std::invalid_argument);
  p = baseParams(cfg);
  p.np = 0;
  EXPECT_THROW(runIor(cfg, p), std::invalid_argument);
}

TEST(Ior, TracedRunShowsTwoPhaseStructure) {
  // Figure 6: IOR's own I/O model is one write phase + one read phase.
  auto cfg = configs::makeConfig(ConfigId::A);
  trace::Tracer tracer("ior", 4);
  auto p = baseParams(cfg);
  runIor(cfg, p, &tracer);
  const auto& data = tracer.data();
  // Each rank did 16 writes + 16 reads.
  EXPECT_EQ(data.perRank[0].size(), 32u);
  int writes = 0;
  for (const auto& rec : data.perRank[0]) {
    writes += trace::isWriteOp(rec.op);
  }
  EXPECT_EQ(writes, 16);
}

TEST(Ior, SummaryRendersMetrics) {
  auto cfg = configs::makeConfig(ConfigId::A);
  auto result = runIor(cfg, baseParams(cfg));
  auto text = result.summary();
  EXPECT_NE(text.find("MB/s"), std::string::npos);
  EXPECT_NE(text.find("IOPS"), std::string::npos);
}

}  // namespace
}  // namespace iop::ior
