#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/compare.hpp"
#include "core/iomodel.hpp"
#include "core/lap.hpp"
#include "core/offsetfn.hpp"
#include "core/phase.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

namespace iop::core {
namespace {

using iop::util::MiB;
using trace::Record;
using trace::TraceData;

Record mkRec(int rank, int file, const char* op, std::uint64_t offset,
             std::uint64_t tick, std::uint64_t rs, double time = 0,
             double duration = 0.1) {
  Record r;
  r.rank = rank;
  r.fileId = file;
  r.op = op;
  r.offsetUnits = offset;
  r.tick = tick;
  r.requestBytes = rs;
  r.time = time;
  r.duration = duration;
  return r;
}

// ----------------------------------------------------------------- LAPs

TEST(Lap, CollapsesConstantStrideRun) {
  std::vector<Record> recs;
  for (int i = 0; i < 40; ++i) {
    recs.push_back(mkRec(0, 1, "MPI_File_write_at_all",
                         static_cast<std::uint64_t>(i) * 265302,
                         148 + static_cast<std::uint64_t>(i) * 121,
                         10612080));
  }
  auto laps = extractLaps(recs);
  ASSERT_EQ(laps.size(), 1u);
  EXPECT_EQ(laps[0].rep, 40u);
  EXPECT_EQ(laps[0].dispUnits, 265302);
  EXPECT_EQ(laps[0].initOffsetUnits, 0u);
  EXPECT_EQ(laps[0].rsBytes, 10612080u);
}

TEST(Lap, SplitsOnOperationChange) {
  std::vector<Record> recs;
  for (int i = 0; i < 3; ++i) {
    recs.push_back(mkRec(0, 1, "MPI_File_write", i * 100, 1 + i, 100));
  }
  for (int i = 0; i < 3; ++i) {
    recs.push_back(mkRec(0, 1, "MPI_File_read", i * 100, 4 + i, 100));
  }
  auto laps = extractLaps(recs);
  ASSERT_EQ(laps.size(), 2u);
  EXPECT_EQ(laps[0].op, "MPI_File_write");
  EXPECT_EQ(laps[1].op, "MPI_File_read");
  EXPECT_EQ(laps[0].rep, 3u);
}

TEST(Lap, SplitsOnStrideChange) {
  std::vector<Record> recs;
  recs.push_back(mkRec(0, 1, "MPI_File_write", 0, 1, 100));
  recs.push_back(mkRec(0, 1, "MPI_File_write", 100, 2, 100));
  recs.push_back(mkRec(0, 1, "MPI_File_write", 200, 3, 100));
  recs.push_back(mkRec(0, 1, "MPI_File_write", 1000, 4, 100));
  recs.push_back(mkRec(0, 1, "MPI_File_write", 1800, 5, 100));
  auto laps = extractLaps(recs);
  ASSERT_EQ(laps.size(), 2u);
  EXPECT_EQ(laps[0].rep, 3u);
  EXPECT_EQ(laps[1].rep, 2u);
  EXPECT_EQ(laps[1].dispUnits, 800);
}

TEST(Lap, SplitsOnRequestSizeChange) {
  std::vector<Record> recs;
  recs.push_back(mkRec(0, 1, "MPI_File_write", 0, 1, 100));
  recs.push_back(mkRec(0, 1, "MPI_File_write", 100, 2, 200));
  auto laps = extractLaps(recs);
  EXPECT_EQ(laps.size(), 2u);
}

TEST(Lap, RejectsMixedRanks) {
  std::vector<Record> recs;
  recs.push_back(mkRec(0, 1, "MPI_File_write", 0, 1, 100));
  recs.push_back(mkRec(1, 1, "MPI_File_write", 0, 1, 100));
  EXPECT_THROW(extractLaps(recs), std::invalid_argument);
}

TEST(Lap, RenderTableShowsColumns) {
  std::vector<Record> recs{mkRec(0, 1, "MPI_File_write_at_all", 0, 1, 100)};
  auto laps = extractLaps(recs);
  auto text = renderLapTable(laps);
  EXPECT_NE(text.find("OffsetInit"), std::string::npos);
  EXPECT_NE(text.find("MPI_File_write_at_all"), std::string::npos);
}

// ------------------------------------------------------------- Segments

TEST(Segment, SingleRunIsOneSegment) {
  std::vector<Record> recs;
  for (int i = 0; i < 8; ++i) {
    recs.push_back(mkRec(0, 1, "MPI_File_write", i * 32, 1 + i, 32));
  }
  auto segs = segmentRecords(recs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].rep, 8u);
  EXPECT_EQ(segs[0].ops.size(), 1u);
}

TEST(Segment, MadbenchWFunctionMatchesPaperGrouping) {
  // R0 R1 (R2 W0) (R3 W1) ... (R7 W5) W6 W7: the paper's Table VIII
  // phases 2..4 structure: [R x2] [(R,W) x6] [W x2].
  std::vector<Record> recs;
  std::uint64_t tick = 1;
  const std::uint64_t rs = 32 * MiB;
  int nextRead = 0, nextWrite = 0;
  for (int step = 0; step < 10; ++step) {
    if (nextRead < 8) {
      recs.push_back(mkRec(0, 1, "MPI_File_read",
                           static_cast<std::uint64_t>(nextRead) * rs, tick++,
                           rs));
      ++nextRead;
    }
    if (step >= 2) {
      recs.push_back(mkRec(0, 1, "MPI_File_write",
                           static_cast<std::uint64_t>(nextWrite) * rs,
                           tick++, rs));
      ++nextWrite;
    }
  }
  ASSERT_EQ(recs.size(), 16u);
  auto segs = segmentRecords(recs);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].ops.size(), 1u);
  EXPECT_EQ(segs[0].ops[0].op, "MPI_File_read");
  EXPECT_EQ(segs[0].rep, 2u);
  EXPECT_EQ(segs[1].ops.size(), 2u);
  EXPECT_EQ(segs[1].rep, 6u);
  EXPECT_EQ(segs[1].ops[0].op, "MPI_File_read");
  EXPECT_EQ(segs[1].ops[1].op, "MPI_File_write");
  EXPECT_EQ(segs[2].ops[0].op, "MPI_File_write");
  EXPECT_EQ(segs[2].rep, 2u);
}

TEST(Segment, CycleOffsetsProgressIndependently) {
  // (R at 0,rs,2rs...; W at 100rs,101rs,...) x4
  std::vector<Record> recs;
  std::uint64_t tick = 1;
  for (int i = 0; i < 4; ++i) {
    recs.push_back(mkRec(0, 1, "MPI_File_read",
                         static_cast<std::uint64_t>(i) * 32, tick++, 32));
    recs.push_back(mkRec(0, 1, "MPI_File_write",
                         3200 + static_cast<std::uint64_t>(i) * 32, tick++,
                         32));
  }
  auto segs = segmentRecords(recs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].rep, 4u);
  EXPECT_EQ(segs[0].ops[0].dispUnits, 32);
  EXPECT_EQ(segs[0].ops[1].dispUnits, 32);
  EXPECT_EQ(segs[0].ops[1].initOffsetUnits, 3200u);
}

TEST(Segment, GreedyFallbackMatchesDpOnSimpleRuns) {
  std::vector<Record> recs;
  for (int i = 0; i < 100; ++i) {
    recs.push_back(mkRec(0, 1, "MPI_File_write", i * 32, 1 + i, 32));
  }
  SegmentOptions tiny;
  tiny.dpLimit = 10;  // force greedy
  auto greedy = segmentRecords(recs, tiny);
  auto dp = segmentRecords(recs);
  ASSERT_EQ(greedy.size(), dp.size());
  EXPECT_EQ(greedy[0].rep, dp[0].rep);
}

TEST(Segment, TimesAndDurationsAggregatedPerRep) {
  std::vector<Record> recs;
  recs.push_back(mkRec(0, 1, "MPI_File_read", 0, 1, 32, 10.0, 0.5));
  recs.push_back(mkRec(0, 1, "MPI_File_write", 100, 2, 32, 10.5, 0.25));
  recs.push_back(mkRec(0, 1, "MPI_File_read", 32, 3, 32, 11.0, 0.5));
  recs.push_back(mkRec(0, 1, "MPI_File_write", 132, 4, 32, 11.5, 0.25));
  auto segs = segmentRecords(recs);
  ASSERT_EQ(segs.size(), 1u);
  ASSERT_EQ(segs[0].rep, 2u);
  EXPECT_DOUBLE_EQ(segs[0].repIoDurations[0], 0.75);
  EXPECT_DOUBLE_EQ(segs[0].repStartTimes[1], 11.0);
  EXPECT_DOUBLE_EQ(segs[0].repEndTimes[1], 11.75);
}

// ------------------------------------------------------------ OffsetFn

TEST(OffsetFn, FitsLinearRankOffsets) {
  const std::uint64_t rs = 32 * MiB;
  std::vector<int> ranks{0, 1, 2, 3};
  std::vector<std::uint64_t> offsets;
  for (int r : ranks) {
    offsets.push_back(static_cast<std::uint64_t>(r) * 8 * rs);
  }
  auto fn = fitRankOffsets(ranks, offsets);
  EXPECT_TRUE(fn.exact);
  EXPECT_DOUBLE_EQ(fn.aBytes, 8.0 * rs);
  EXPECT_DOUBLE_EQ(fn.bBytes, 0.0);
  EXPECT_EQ(fn.eval(3, 0), offsets[3]);
}

TEST(OffsetFn, DetectsNonLinearOffsets) {
  std::vector<int> ranks{0, 1, 2};
  std::vector<std::uint64_t> offsets{0, 100, 500};
  auto fn = fitRankOffsets(ranks, offsets);
  EXPECT_FALSE(fn.exact);
}

TEST(OffsetFn, RendersPaperStyleMadbench) {
  const std::uint64_t rs = 32 * MiB;
  OffsetFn fn;
  fn.exact = true;
  fn.aBytes = 8.0 * rs;
  fn.bBytes = 2.0 * rs;
  EXPECT_EQ(fn.render(rs, 16), "idP*8*32MB + 2*32MB");
}

TEST(OffsetFn, RendersTableXiStyleWithPhaseTerm) {
  const std::uint64_t rs = 10 * MiB;
  OffsetFn fn;
  fn.exact = true;
  fn.aBytes = static_cast<double>(rs);
  fn.cBytes = static_cast<double>(rs) * 16;  // rs * np
  EXPECT_EQ(fn.render(rs, 16), "idP*10MB + 10MB*np*(ph-1)");
}

TEST(OffsetFn, FamilyFitRecoverPhaseStride) {
  const std::uint64_t rs = 10 * MiB;
  std::vector<OffsetFn> fns;
  for (int ph = 0; ph < 5; ++ph) {
    OffsetFn fn;
    fn.exact = true;
    fn.aBytes = static_cast<double>(rs);
    fn.bBytes = static_cast<double>(rs) * 16 * ph;
    fns.push_back(fn);
  }
  auto family = fitPhaseFamily(fns);
  EXPECT_TRUE(family.exact);
  EXPECT_DOUBLE_EQ(family.cBytes, static_cast<double>(rs) * 16);
  EXPECT_DOUBLE_EQ(family.bBytes, 0.0);
}

TEST(OffsetFn, FamilyFitRejectsIrregularProgression) {
  std::vector<OffsetFn> fns(3);
  for (auto& fn : fns) fn.exact = true;
  fns[0].bBytes = 0;
  fns[1].bBytes = 100;
  fns[2].bBytes = 300;  // not linear
  EXPECT_FALSE(fitPhaseFamily(fns).exact);
}

// --------------------------------------------------------------- Phases

/// Build a BT-IO style trace: nDumps collective writes per rank with comm
/// between dumps (tick gaps), then nDumps back-to-back reads.
TraceData btioTrace(int np, int nDumps, std::uint64_t rs) {
  TraceData data;
  data.appName = "btio-test";
  data.np = np;
  data.perRank.resize(static_cast<std::size_t>(np));
  trace::FileMeta meta;
  meta.fileId = 1;
  meta.path = "btio.out";
  meta.etypeBytes = 1;
  meta.sawCollective = true;
  meta.sawExplicitOffsets = true;
  meta.np = np;
  data.files.push_back(meta);
  for (int r = 0; r < np; ++r) {
    std::uint64_t tick = 5;
    double time = 1.0;
    auto& recs = data.perRank[static_cast<std::size_t>(r)];
    for (int d = 0; d < nDumps; ++d) {
      recs.push_back(mkRec(r, 1, "MPI_File_write_at_all",
                           rs * static_cast<std::uint64_t>(r) +
                               rs * static_cast<std::uint64_t>(np) *
                                   static_cast<std::uint64_t>(d),
                           tick, rs, time, 0.2));
      tick += 30;  // solver communication between dumps
      time += 1.0;
    }
    for (int d = 0; d < nDumps; ++d) {
      recs.push_back(mkRec(r, 1, "MPI_File_read_at_all",
                           rs * static_cast<std::uint64_t>(r) +
                               rs * static_cast<std::uint64_t>(np) *
                                   static_cast<std::uint64_t>(d),
                           tick++, rs, time, 0.2));
      time += 0.25;
    }
  }
  return data;
}

TEST(Phase, BtioStructureMatchesTableXI) {
  const std::uint64_t rs = 10 * MiB;
  auto data = btioTrace(4, 40, rs);
  auto phases = detectPhases(data);
  // 40 write phases (tick gaps) + 1 read phase (contiguous ticks).
  ASSERT_EQ(phases.size(), 41u);
  for (int i = 0; i < 40; ++i) {
    const auto& p = phases[static_cast<std::size_t>(i)];
    EXPECT_EQ(p.rep, 1u);
    EXPECT_EQ(p.np(), 4);
    ASSERT_EQ(p.ops.size(), 1u);
    EXPECT_TRUE(p.ops[0].isWrite());
    EXPECT_EQ(p.weightBytes, 4 * rs);
  }
  const auto& readPhase = phases[40];
  EXPECT_EQ(readPhase.rep, 40u);
  EXPECT_FALSE(readPhase.ops[0].isWrite());
  EXPECT_EQ(readPhase.weightBytes, 4ull * 40 * rs);
  EXPECT_EQ(readPhase.ops[0].dispBytes, static_cast<std::int64_t>(4 * rs));
}

TEST(Phase, BtioWritePhasesShareOneFamilyWithPhaseTerm) {
  const std::uint64_t rs = 10 * MiB;
  auto data = btioTrace(4, 40, rs);
  auto phases = detectPhases(data);
  const int family = phases[0].familyId;
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(phases[static_cast<std::size_t>(i)].familyId, family);
    EXPECT_EQ(phases[static_cast<std::size_t>(i)].familyIndex, i);
  }
  const auto& fn = phases[0].ops[0].offsetFn;
  EXPECT_TRUE(fn.exact);
  EXPECT_DOUBLE_EQ(fn.aBytes, static_cast<double>(rs));
  EXPECT_DOUBLE_EQ(fn.cBytes, static_cast<double>(rs) * 4);
  // Phase 17, rank 2: idP*rs + rs*np*(ph-1).
  EXPECT_EQ(phases[16].ops[0].offsetFn.eval(2, phases[16].familyIndex),
            rs * 2 + rs * 4 * 16);
}

TEST(Phase, MeasuredWindowSpansRanks) {
  auto data = btioTrace(2, 3, MiB);
  auto phases = detectPhases(data);
  ASSERT_GE(phases.size(), 1u);
  const auto& p = phases[0];
  EXPECT_DOUBLE_EQ(p.startTime, 1.0);
  EXPECT_DOUBLE_EQ(p.endTime, 1.2);
  EXPECT_GT(p.measuredBandwidth(), 0.0);
}

/// MADbench2-style trace for np ranks: S (8 writes), W (2R,(RW)x6,2W),
/// C (8 reads), all contiguous ticks, offsets idP*8*rs + bin*rs.
TraceData madbenchTrace(int np, std::uint64_t rs) {
  TraceData data;
  data.appName = "madbench-test";
  data.np = np;
  data.perRank.resize(static_cast<std::size_t>(np));
  trace::FileMeta meta;
  meta.fileId = 1;
  meta.path = "mad.out";
  meta.etypeBytes = 1;
  meta.sawIndividualPointers = true;
  meta.np = np;
  data.files.push_back(meta);
  for (int r = 0; r < np; ++r) {
    auto& recs = data.perRank[static_cast<std::size_t>(r)];
    const std::uint64_t base = static_cast<std::uint64_t>(r) * 8 * rs;
    std::uint64_t tick = 1;
    double time = 0;
    auto add = [&](const char* op, int bin) {
      recs.push_back(mkRec(r, 1, op, base + static_cast<std::uint64_t>(bin) * rs,
                           tick++, rs, time, 0.05));
      time += 0.1;
    };
    for (int i = 0; i < 8; ++i) add("MPI_File_write", i);   // S
    int nextRead = 0, nextWrite = 0;
    for (int step = 0; step < 10; ++step) {                 // W
      if (nextRead < 8) add("MPI_File_read", nextRead++);
      if (step >= 2) add("MPI_File_write", nextWrite++);
    }
    for (int i = 0; i < 8; ++i) add("MPI_File_read", i);    // C
  }
  return data;
}

TEST(Phase, MadbenchFivePhaseStructure) {
  const std::uint64_t rs = 32 * MiB;
  auto data = madbenchTrace(16, rs);
  auto phases = detectPhases(data);
  ASSERT_EQ(phases.size(), 5u);
  // Phase 1: 16 writes, rep 8, weight 4GB.
  EXPECT_EQ(phases[0].opTypeLabel(), "W");
  EXPECT_EQ(phases[0].rep, 8u);
  EXPECT_EQ(phases[0].weightBytes, 16ull * 8 * rs);
  // Phase 2: reads, rep 2, weight 1GB.
  EXPECT_EQ(phases[1].opTypeLabel(), "R");
  EXPECT_EQ(phases[1].rep, 2u);
  EXPECT_EQ(phases[1].weightBytes, 16ull * 2 * rs);
  // Phase 3: interleaved W-R, rep 6, weight 6GB total.
  EXPECT_EQ(phases[2].opTypeLabel(), "W-R");
  EXPECT_EQ(phases[2].rep, 6u);
  EXPECT_EQ(phases[2].ops.size(), 2u);
  EXPECT_EQ(phases[2].weightBytes, 16ull * 6 * 2 * rs);
  // Phase 4: writes, rep 2.
  EXPECT_EQ(phases[3].opTypeLabel(), "W");
  EXPECT_EQ(phases[3].rep, 2u);
  // Phase 5: reads, rep 8, weight 4GB.
  EXPECT_EQ(phases[4].opTypeLabel(), "R");
  EXPECT_EQ(phases[4].rep, 8u);
  EXPECT_EQ(phases[4].weightBytes, 16ull * 8 * rs);
}

TEST(Phase, MadbenchOffsetsMatchTableVIII) {
  const std::uint64_t rs = 32 * MiB;
  auto data = madbenchTrace(16, rs);
  auto phases = detectPhases(data);
  ASSERT_EQ(phases.size(), 5u);
  // Phase 1 initOffset = idP*8*32MB.
  const auto& fn1 = phases[0].ops[0].offsetFn;
  EXPECT_TRUE(fn1.exact);
  EXPECT_DOUBLE_EQ(fn1.aBytes, 8.0 * rs);
  EXPECT_EQ(fn1.render(rs, 16), "idP*8*32MB");
  // Phase 3 read op starts at idP*8*32MB + 2*32MB.
  const auto& readOp = phases[2].ops[0].isWrite() ? phases[2].ops[1]
                                                  : phases[2].ops[0];
  EXPECT_DOUBLE_EQ(readOp.offsetFn.bBytes, 2.0 * rs);
  EXPECT_EQ(readOp.offsetFn.render(rs, 16), "idP*8*32MB + 2*32MB");
}

TEST(Phase, OpCountMatchesTableIX) {
  auto data = madbenchTrace(16, 32 * MiB);
  auto phases = detectPhases(data);
  ASSERT_EQ(phases.size(), 5u);
  EXPECT_EQ(phases[0].opCount(), 128u);  // "128 W"
  EXPECT_EQ(phases[1].opCount(), 32u);   // "32 R"
  EXPECT_EQ(phases[2].opCount(), 192u);  // "192 W-R"
}

TEST(Phase, TickGapOptionMergesBtioWrites) {
  // Ablation: with a huge intra-phase gap allowance, BT-IO's 40 write
  // phases collapse into a single rep-40 phase.
  auto data = btioTrace(4, 40, MiB);
  PhaseDetectionOptions opt;
  opt.maxIntraPhaseTickGap = 1000;
  auto phases = detectPhases(data, opt);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].rep, 40u);
}

TEST(Phase, DistantTickClustersSplitDespiteSameSignature) {
  // Ranks 0-1 and ranks 2-3 execute the same pattern, but thousands of
  // ticks apart — they are different phases in application time, not one.
  TraceData data;
  data.appName = "skewed";
  data.np = 4;
  data.perRank.resize(4);
  data.commEventsPerRank.assign(4, 0);
  trace::FileMeta meta;
  meta.fileId = 1;
  meta.np = 4;
  data.files.push_back(meta);
  for (int r = 0; r < 4; ++r) {
    const std::uint64_t baseTick = r < 2 ? 10 : 5000;
    data.perRank[static_cast<std::size_t>(r)].push_back(
        mkRec(r, 1, "MPI_File_write", static_cast<std::uint64_t>(r) * 100,
              baseTick, 100));
  }
  auto phases = detectPhases(data);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].ranks, (std::vector<int>{0, 1}));
  EXPECT_EQ(phases[1].ranks, (std::vector<int>{2, 3}));

  // A huge tolerance merges them back into one phase.
  PhaseDetectionOptions loose;
  loose.crossRankTickTolerance = 100000;
  EXPECT_EQ(detectPhases(data, loose).size(), 1u);
}

TEST(Phase, SmallTickSkewStaysOnePhase) {
  // The paper's +-1 tick skew between ranks must not split phases.
  TraceData data;
  data.appName = "skew1";
  data.np = 4;
  data.perRank.resize(4);
  data.commEventsPerRank.assign(4, 0);
  trace::FileMeta meta;
  meta.fileId = 1;
  meta.np = 4;
  data.files.push_back(meta);
  const std::uint64_t ticks[] = {148, 147, 147, 147};  // Figure 2's skew
  for (int r = 0; r < 4; ++r) {
    data.perRank[static_cast<std::size_t>(r)].push_back(
        mkRec(r, 1, "MPI_File_write_at_all", 0, ticks[r], 10612080));
  }
  auto phases = detectPhases(data);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].np(), 4);
}

TEST(Phase, RenderTableContainsOffsetFormula) {
  auto data = madbenchTrace(4, 32 * MiB);
  auto phases = detectPhases(data);
  auto text = renderPhaseTable(phases, "Table");
  EXPECT_NE(text.find("idP*8*32MB"), std::string::npos);
  EXPECT_NE(text.find("InitOffset"), std::string::npos);
}

// --------------------------------------------------------------- Model

TEST(Model, NonBlockingMetadataSurvivesDerivation) {
  auto data = madbenchTrace(2, MiB);
  data.files[0].sawNonBlocking = true;
  auto model = extractModel(data);
  auto meta = model.metadataFor(1);
  EXPECT_FALSE(meta.blockingIo);
  EXPECT_NE(meta.describe().find("Non-blocking"), std::string::npos);
}

TEST(Model, MetadataDerivation) {
  auto data = madbenchTrace(4, 32 * MiB);
  auto model = extractModel(data);
  auto meta = model.metadataFor(1);
  EXPECT_EQ(meta.accessType, "Shared");
  EXPECT_EQ(meta.accessMode, "Sequential");
  EXPECT_FALSE(meta.collectiveIo);
  EXPECT_TRUE(meta.individualPointers);
}

TEST(Model, BtioMetadataIsStridedCollective) {
  auto data = btioTrace(4, 10, MiB);
  auto model = extractModel(data);
  auto meta = model.metadataFor(1);
  EXPECT_EQ(meta.accessMode, "Strided");
  EXPECT_TRUE(meta.collectiveIo);
  EXPECT_TRUE(meta.explicitOffsets);
}

TEST(Model, TotalWeightEqualsTraceBytes) {
  auto data = madbenchTrace(8, MiB);
  auto model = extractModel(data);
  EXPECT_EQ(model.totalWeightBytes(), data.totalBytes());
}

TEST(Model, SaveLoadRoundTrip) {
  auto data = btioTrace(4, 10, MiB);
  auto model = extractModel(data);
  const auto path = std::filesystem::temp_directory_path() /
                    "iop_model_test.model";
  model.save(path);
  auto loaded = IOModel::load(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.phases().size(), model.phases().size());
  EXPECT_EQ(loaded.np(), model.np());
  EXPECT_EQ(loaded.appName(), model.appName());
  for (std::size_t i = 0; i < model.phases().size(); ++i) {
    const auto& a = model.phases()[i];
    const auto& b = loaded.phases()[i];
    EXPECT_EQ(a.weightBytes, b.weightBytes);
    EXPECT_EQ(a.rep, b.rep);
    EXPECT_EQ(a.ranks, b.ranks);
    ASSERT_EQ(a.ops.size(), b.ops.size());
    EXPECT_EQ(a.ops[0].rsBytes, b.ops[0].rsBytes);
    EXPECT_EQ(a.ops[0].initOffsetBytes, b.ops[0].initOffsetBytes);
  }
}

TEST(Model, GlobalPatternSeriesEmitsPoints) {
  auto data = btioTrace(2, 3, MiB);
  auto model = extractModel(data);
  auto series = model.renderGlobalPatternSeries();
  // 2 ranks * (3 write phases + 3 read reps) = 12 points + header.
  int lines = 0;
  for (char c : series) lines += c == '\n';
  EXPECT_EQ(lines, 13);
}

TEST(Compare, IdenticalModelsCompareEqual) {
  auto data = btioTrace(4, 6, MiB);
  auto a = extractModel(data);
  auto b = extractModel(data);
  auto diff = compareModels(a, b);
  EXPECT_TRUE(static_cast<bool>(diff));
  EXPECT_TRUE(diff.differences.empty());
}

TEST(Compare, DetectsStructuralDifferences) {
  auto a = extractModel(btioTrace(4, 6, MiB));
  auto b = extractModel(btioTrace(4, 6, 2 * MiB));  // different rs
  auto diff = compareModels(a, b);
  EXPECT_FALSE(static_cast<bool>(diff));
  EXPECT_FALSE(diff.differences.empty());
  auto c = extractModel(btioTrace(4, 5, MiB));  // different phase count
  auto diff2 = compareModels(a, c);
  EXPECT_FALSE(static_cast<bool>(diff2));
  EXPECT_NE(diff2.differences.front().find("phase counts"),
            std::string::npos);
}

TEST(Compare, IgnoresTimings) {
  auto data = btioTrace(4, 4, MiB);
  auto a = extractModel(data);
  // Same structure, different measured durations.
  for (auto& rankRecs : data.perRank) {
    for (auto& rec : rankRecs) rec.duration *= 10;
  }
  auto b = extractModel(data);
  EXPECT_TRUE(static_cast<bool>(compareModels(a, b)));
}

TEST(Model, SummaryMentionsAppAndPhases) {
  auto data = madbenchTrace(4, MiB);
  auto model = extractModel(data);
  auto text = model.renderSummary();
  EXPECT_NE(text.find("madbench-test"), std::string::npos);
  EXPECT_NE(text.find("Sequential"), std::string::npos);
}

}  // namespace
}  // namespace iop::core
