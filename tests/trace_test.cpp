#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "trace/summary.hpp"
#include "trace/tracefile.hpp"
#include "trace/tracer.hpp"

namespace iop::trace {
namespace {

Record mkRec(int rank, int file, const char* op, std::uint64_t offset,
             std::uint64_t tick, std::uint64_t rs) {
  Record r;
  r.rank = rank;
  r.fileId = file;
  r.op = op;
  r.offsetUnits = offset;
  r.tick = tick;
  r.requestBytes = rs;
  r.time = 22.198392;
  r.duration = 0.131034;
  return r;
}

TEST(Tracer, AccumulatesPerRank) {
  Tracer tracer("app", 2);
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write_at_all", 0, 148, 10612080));
  tracer.onIoCall(mkRec(1, 1, "MPI_File_write_at_all", 0, 147, 10612080));
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write_at_all", 265302, 269,
                        10612080));
  const auto& data = tracer.data();
  EXPECT_EQ(data.perRank[0].size(), 2u);
  EXPECT_EQ(data.perRank[1].size(), 1u);
}

TEST(Tracer, RejectsOutOfRangeRank) {
  Tracer tracer("app", 2);
  EXPECT_THROW(tracer.onIoCall(mkRec(5, 1, "MPI_File_write", 0, 1, 10)),
               std::out_of_range);
}

TEST(Tracer, CountsCommEvents) {
  Tracer tracer("app", 2);
  tracer.onCommEvent(0, 1, "MPI_Barrier", 0.0);
  tracer.onCommEvent(0, 2, "MPI_Bcast", 0.1);
  tracer.onCommEvent(1, 1, "MPI_Barrier", 0.0);
  EXPECT_EQ(tracer.data().commEventsPerRank[0], 2u);
  EXPECT_EQ(tracer.data().commEventsPerRank[1], 1u);
}

TEST(TraceData, RecordsForFileFilters) {
  Tracer tracer("app", 1);
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write", 0, 1, 10));
  tracer.onIoCall(mkRec(0, 2, "MPI_File_write", 0, 2, 10));
  tracer.onIoCall(mkRec(0, 1, "MPI_File_read", 0, 3, 10));
  EXPECT_EQ(tracer.data().recordsForFile(1).size(), 2u);
  EXPECT_EQ(tracer.data().recordsForFile(2).size(), 1u);
}

TEST(TraceData, TotalBytes) {
  Tracer tracer("app", 2);
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write", 0, 1, 100));
  tracer.onIoCall(mkRec(1, 1, "MPI_File_write", 0, 1, 250));
  EXPECT_EQ(tracer.data().totalBytes(), 350u);
}

TEST(OpClassification, WriteAndCollective) {
  EXPECT_TRUE(isWriteOp("MPI_File_write_at_all"));
  EXPECT_TRUE(isWriteOp("MPI_File_write"));
  EXPECT_FALSE(isWriteOp("MPI_File_read_at"));
  EXPECT_TRUE(isCollectiveOp("MPI_File_write_at_all"));
  EXPECT_TRUE(isCollectiveOp("MPI_File_read_all"));
  EXPECT_FALSE(isCollectiveOp("MPI_File_write_at"));
  EXPECT_FALSE(isCollectiveOp("MPI_File_write"));
}

TEST(TraceFile, WriteReadRoundTrip) {
  Tracer tracer("rt-app", 2);
  FileMeta meta;
  meta.fileId = 1;
  meta.path = "data.bin";
  meta.shared = true;
  meta.etypeBytes = 40;
  meta.filetypeBlock = 265302;
  meta.filetypeStride = 4 * 265302;
  meta.sawCollective = true;
  meta.sawExplicitOffsets = true;
  meta.np = 2;
  tracer.onFileMeta(meta);
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write_at_all", 0, 148, 10612080));
  tracer.onIoCall(mkRec(1, 1, "MPI_File_write_at_all", 0, 147, 10612080));
  tracer.onCommEvent(0, 1, "MPI_Barrier", 0.0);

  const auto dir = std::filesystem::temp_directory_path() / "iop_trace_rt";
  writeTraces(dir, tracer.data());
  auto loaded = readTraces(dir, "rt-app");
  std::filesystem::remove_all(dir);

  EXPECT_EQ(loaded.np, 2);
  ASSERT_EQ(loaded.perRank[0].size(), 1u);
  const auto& r = loaded.perRank[0][0];
  EXPECT_EQ(r.op, "MPI_File_write_at_all");
  EXPECT_EQ(r.tick, 148u);
  EXPECT_EQ(r.requestBytes, 10612080u);
  EXPECT_NEAR(r.time, 22.198392, 1e-9);
  ASSERT_EQ(loaded.files.size(), 1u);
  EXPECT_EQ(loaded.files[0].etypeBytes, 40u);
  EXPECT_EQ(loaded.files[0].filetypeStride, 4u * 265302);
  EXPECT_EQ(loaded.commEventsPerRank[0], 1u);
}

TEST(TraceFile, ReadMissingFileThrows) {
  EXPECT_THROW(readTraces("/nonexistent-dir-xyz", "nope"),
               std::runtime_error);
}

/// Scratch trace directory with a minimal valid meta file; tests then
/// drop hostile rank files next to it.
class HostileTraceDir {
 public:
  explicit HostileTraceDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() /
             ("iop_trace_hostile_" + name)) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    writeFile("h.meta", "# iop-trace-meta v1\napp h\nnp 1\n");
  }
  ~HostileTraceDir() { std::filesystem::remove_all(dir_); }

  void writeFile(const std::string& name, const std::string& bytes) {
    std::ofstream out(dir_ / name, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
  }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

/// readTraces must fail with a diagnostic carrying every fragment in
/// `needles` — at minimum the file and 1-based line of the bad record.
void expectReadError(const HostileTraceDir& scratch,
                     const std::vector<std::string>& needles) {
  try {
    readTraces(scratch.dir(), "h");
    FAIL() << "expected malformed-trace error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    for (const auto& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "diagnostic '" << what << "' lacks '" << needle << "'";
    }
  }
}

TEST(TraceFileHostile, EmptyRankFileIsZeroRecords) {
  HostileTraceDir scratch("empty");
  scratch.writeFile("h.trace.0", "");
  const auto data = readTraces(scratch.dir(), "h");
  EXPECT_TRUE(data.perRank[0].empty());
}

TEST(TraceFileHostile, BlankLinesAndCommentsAreIgnored) {
  HostileTraceDir scratch("comments");
  scratch.writeFile("h.trace.0",
                    "# header\n\n   \n0 1 MPI_File_write 0 1 100 0.5 0.1\n");
  const auto data = readTraces(scratch.dir(), "h");
  ASSERT_EQ(data.perRank[0].size(), 1u);
  EXPECT_EQ(data.perRank[0][0].requestBytes, 100u);
}

TEST(TraceFileHostile, MidRecordTruncationNamesFileAndLine) {
  // A kill mid-write leaves a final record missing fields.
  HostileTraceDir scratch("truncated");
  scratch.writeFile("h.trace.0",
                    "0 1 MPI_File_write 0 1 100 0.5 0.1\n"
                    "0 1 MPI_File_write 100 2 100 0.6");
  expectReadError(scratch, {"h.trace.0:2:", "malformed trace record",
                            "MPI_File_write 100 2 100 0.6"});
}

TEST(TraceFileHostile, NulBytesAreEscapedInTheDiagnostic) {
  HostileTraceDir scratch("nul");
  std::string line = "0 1 MPI_File_write 0";
  line.push_back('\0');
  line += "9 1 100 0.5 0.1\n";
  scratch.writeFile("h.trace.0", line);
  // The NUL lands inside the offset field and fails the parse; the
  // excerpt must render it visibly instead of silently truncating the
  // message at the first zero byte.
  expectReadError(scratch, {"h.trace.0:1:", "\\x00"});
}

TEST(TraceFileHostile, HugeOffsetsRoundTrip) {
  // Offsets past 2 GiB (and near UINT64_MAX) must parse exactly; 32-bit
  // arithmetic anywhere in the parser would mangle them.
  HostileTraceDir scratch("huge");
  scratch.writeFile("h.trace.0",
                    "0 1 MPI_File_write 4294967296 1 2147483648 0.5 0.1\n"
                    "0 1 MPI_File_write 18446744073709551615 2 1 0.5 0.1\n");
  const auto data = readTraces(scratch.dir(), "h");
  ASSERT_EQ(data.perRank[0].size(), 2u);
  EXPECT_EQ(data.perRank[0][0].offsetUnits, 4294967296ULL);
  EXPECT_EQ(data.perRank[0][0].requestBytes, 2147483648ULL);
  EXPECT_EQ(data.perRank[0][1].offsetUnits, 18446744073709551615ULL);
}

TEST(TraceFileHostile, OverlongLinesAreClippedInTheDiagnostic) {
  HostileTraceDir scratch("overlong");
  scratch.writeFile("h.trace.0", std::string(4096, 'A') + "\n");
  expectReadError(scratch, {"h.trace.0:1:", "... (4096 bytes)"});
}

TEST(TraceFileHostile, MalformedMetaNamesFileAndLine) {
  HostileTraceDir scratch("meta");
  scratch.writeFile("h.meta", "# iop-trace-meta v1\napp h\nnp banana\n");
  expectReadError(scratch, {"h.meta:3:", "malformed meta record"});

  scratch.writeFile("h.meta",
                    "app h\nnp 1\nfile 1 data.bin 1 40\n");  // short row
  expectReadError(scratch, {"h.meta:3:", "needs at least 12 fields"});
}

TEST(TraceFile, RenderTableMatchesFigure2Shape) {
  Tracer tracer("fig2", 1);
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write_at_all", 0, 148, 10612080));
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write_at_all", 265302, 269,
                        10612080));
  auto text = renderTraceTable(tracer.data(), 0);
  EXPECT_NE(text.find("IdP"), std::string::npos);
  EXPECT_NE(text.find("RequestSize"), std::string::npos);
  EXPECT_NE(text.find("265302"), std::string::npos);
  EXPECT_NE(text.find("10612080"), std::string::npos);
}

TEST(TraceFile, MaxRowsLimitsOutput) {
  Tracer tracer("fig2", 1);
  for (int i = 0; i < 10; ++i) {
    tracer.onIoCall(mkRec(0, 1, "MPI_File_write", i * 10, 1 + i, 10));
  }
  auto text = renderTraceTable(tracer.data(), 0, 3);
  int rows = 0;
  std::size_t pos = 0;
  while ((pos = text.find("MPI_File_write", pos)) != std::string::npos) {
    ++rows;
    pos += 1;
  }
  EXPECT_EQ(rows, 3);
}

TEST(Summary, CountsOpsAndBytesPerFile) {
  Tracer tracer("sum", 2);
  FileMeta meta;
  meta.fileId = 1;
  meta.path = "a.dat";
  meta.etypeBytes = 1;
  tracer.onFileMeta(meta);
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write", 0, 1, 100));
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write", 100, 2, 100));   // seq
  tracer.onIoCall(mkRec(0, 1, "MPI_File_read", 5000, 3, 200));   // jump
  tracer.onIoCall(mkRec(1, 1, "MPI_File_write_at_all", 0, 1, 50));
  auto summary = summarizeTrace(tracer.data());
  ASSERT_EQ(summary.files.size(), 1u);
  const auto& f = summary.files[0];
  EXPECT_EQ(f.writeOps, 3u);
  EXPECT_EQ(f.readOps, 1u);
  EXPECT_EQ(f.bytesWritten, 250u);
  EXPECT_EQ(f.bytesRead, 200u);
  EXPECT_EQ(f.collectiveOps, 1u);
  EXPECT_EQ(f.independentOps, 3u);
  EXPECT_EQ(f.minRequest, 50u);
  EXPECT_EQ(f.maxRequest, 200u);
  EXPECT_EQ(summary.totalBytes, 450u);
  // Two follow-up ops on rank 0 (one sequential, one jump); rank 1 has
  // only a first op.
  EXPECT_NEAR(f.sequentialFraction, 0.5, 1e-9);
}

TEST(Summary, EtypeScaledOffsetsCountAsSequential) {
  Tracer tracer("sum", 1);
  FileMeta meta;
  meta.fileId = 1;
  meta.path = "v.dat";
  meta.etypeBytes = 40;
  tracer.onFileMeta(meta);
  // 400-byte requests advance the view offset by 10 etypes.
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write_at_all", 0, 1, 400));
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write_at_all", 10, 2, 400));
  auto summary = summarizeTrace(tracer.data());
  EXPECT_NEAR(summary.files[0].sequentialFraction, 1.0, 1e-9);
}

TEST(Summary, SizeHistogramBinsRequests) {
  Tracer tracer("sum", 1);
  FileMeta meta;
  meta.fileId = 1;
  meta.path = "h.dat";
  tracer.onFileMeta(meta);
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write", 0, 1, 50));        // 0-100
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write", 50, 2, 2048));     // 1K-10K
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write", 3000, 3, 5 << 20));  // 4M-10M
  auto summary = summarizeTrace(tracer.data());
  const auto& bins = summary.files[0].sizeBins;
  EXPECT_EQ(bins[0], 1u);
  EXPECT_EQ(bins[2], 1u);
  EXPECT_EQ(bins[6], 1u);
}

TEST(Summary, RenderMentionsFilesAndHistogram) {
  Tracer tracer("renderme", 1);
  FileMeta meta;
  meta.fileId = 1;
  meta.path = "x.dat";
  tracer.onFileMeta(meta);
  tracer.onIoCall(mkRec(0, 1, "MPI_File_write", 0, 1, 1024));
  auto text = summarizeTrace(tracer.data()).render();
  EXPECT_NE(text.find("renderme"), std::string::npos);
  EXPECT_NE(text.find("x.dat"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
}

}  // namespace
}  // namespace iop::trace
