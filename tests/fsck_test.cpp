// iop::sweep fsck — damage classification, quarantine/repair semantics,
// exit codes, and the second-pass-is-clean invariant over campaign
// stores, shared stores and capture archives.
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/archive.hpp"
#include "sweep/campaign.hpp"
#include "sweep/executor.hpp"
#include "sweep/fsck.hpp"
#include "sweep/store.hpp"

namespace {

using namespace iop;

constexpr const char* kCampaignText =
    "name fsck-test\n"
    "app example\n"
    "config A\n"
    "config B\n";

sweep::ResolvedCampaign resolveTestCampaign() {
  return sweep::resolveCampaign(sweep::parseCampaign(kCampaignText, "."));
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("iop_fsck_test_" + name)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

std::string readText(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeText(const std::filesystem::path& path, const std::string& text) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

/// A pid that is certainly dead: fork a child that exits immediately and
/// reap it.
pid_t deadPid() {
  const pid_t pid = fork();
  if (pid == 0) _exit(0);
  int status = 0;
  waitpid(pid, &status, 0);
  return pid;
}

/// Run the 2-cell test campaign into `root` and return the campaign.
sweep::ResolvedCampaign populateStore(const std::filesystem::path& root) {
  auto campaign = resolveTestCampaign();
  sweep::CampaignStore store(root);
  sweep::SweepOptions options;
  const auto outcome = sweep::runSweep(campaign, store, options);
  EXPECT_EQ(outcome.failures, 0u);
  return campaign;
}

bool hasDamage(const sweep::FsckReport& report, sweep::FsckDamage damage) {
  for (const auto& f : report.findings) {
    if (f.damage == damage) return true;
  }
  return false;
}

TEST(Fsck, MissingRootIsClean) {
  const auto report =
      sweep::fsckCampaignStore("/no/such/iop/fsck/root", {});
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.exitCode(), 0);
  EXPECT_EQ(sweep::fsckArchive("/no/such/iop/fsck/root", {}).exitCode(), 0);
}

TEST(Fsck, CleanStorePassesQuickAndDeep) {
  TempDir dir("clean");
  populateStore(dir.path());
  sweep::FsckOptions quick;
  EXPECT_TRUE(sweep::fsckCampaignStore(dir.path(), quick).clean());
  sweep::FsckOptions deep;
  deep.deep = true;
  const auto report = sweep::fsckCampaignStore(dir.path(), deep);
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.scanned, 0u);
  EXPECT_NE(report.render("t").find("clean"), std::string::npos);
}

TEST(Fsck, QuarantinesTornCell) {
  TempDir dir("torn_cell");
  populateStore(dir.path());
  const auto bad = dir.path() / "cells" / "0123456789abcdef.cell";
  writeText(bad, "not a cell\n");

  sweep::FsckOptions options;
  options.deep = true;
  const auto report = sweep::fsckCampaignStore(dir.path(), options);
  EXPECT_EQ(report.exitCode(), 1);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::TornCell));
  EXPECT_FALSE(std::filesystem::exists(bad));
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "quarantine" /
                                      "0123456789abcdef.cell"));
  EXPECT_TRUE(sweep::fsckCampaignStore(dir.path(), options).clean());
}

TEST(Fsck, ClassifiesChecksumMismatchSeparatelyFromTorn) {
  TempDir dir("checksum");
  const auto campaign = populateStore(dir.path());
  const auto key = campaign.planCells()[0].key;
  const auto cellPath = dir.path() / "cells" / (key + ".cell");
  // Flip one payload byte while keeping the structure (and the seal)
  // intact: the parser reaches the checksum and rejects it.
  std::string text = readText(cellPath);
  const auto pos = text.find("time-io");
  ASSERT_NE(pos, std::string::npos);
  text[text.find_first_of("0123456789", pos)] ^= 1;
  writeText(cellPath, text);

  sweep::FsckOptions options;
  options.deep = true;
  const auto report = sweep::fsckCampaignStore(dir.path(), options);
  EXPECT_EQ(report.exitCode(), 1);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::ChecksumMismatch));
  EXPECT_FALSE(std::filesystem::exists(cellPath));
}

TEST(Fsck, DetectsCellUnderWrongKey) {
  TempDir dir("wrong_key");
  const auto campaign = populateStore(dir.path());
  const auto plan = campaign.planCells();
  // A valid sealed cell copied over another key's file: parses, checksums,
  // but holds the wrong key.
  std::filesystem::copy_file(
      dir.path() / "cells" / (plan[0].key + ".cell"),
      dir.path() / "cells" / (plan[1].key + ".cell"),
      std::filesystem::copy_options::overwrite_existing);

  sweep::FsckOptions options;
  options.deep = true;
  const auto report = sweep::fsckCampaignStore(dir.path(), options);
  EXPECT_EQ(report.exitCode(), 1);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::WrongKey));
}

TEST(Fsck, QuarantinesTornModelAndCapture) {
  TempDir dir("torn_model");
  populateStore(dir.path());
  writeText(dir.path() / "models" / "feedfacefeedface.model", "torn");
  // Torn captures are a deep-only finding.
  const auto capture =
      std::filesystem::directory_iterator(dir.path() / "captures")
          ->path();
  writeText(capture, "capture v999\n");

  const auto quick = sweep::fsckCampaignStore(dir.path(), {});
  EXPECT_TRUE(hasDamage(quick, sweep::FsckDamage::TornModel));
  EXPECT_FALSE(hasDamage(quick, sweep::FsckDamage::TornCapture));

  sweep::FsckOptions deep;
  deep.deep = true;
  const auto report = sweep::fsckCampaignStore(dir.path(), deep);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::TornCapture));
  EXPECT_FALSE(std::filesystem::exists(capture));
  EXPECT_TRUE(sweep::fsckCampaignStore(dir.path(), deep).clean());
}

TEST(Fsck, TornCampaignPrefixQuarantinedDifferentCampaignKept) {
  TempDir dir("campaign");
  populateStore(dir.path());
  const std::string canonical =
      sweep::parseCampaign(kCampaignText, ".").canonicalText();
  ASSERT_EQ(readText(dir.path() / "campaign.txt"), canonical);

  // A strict prefix is a torn write: quarantined so resume can rebind.
  writeText(dir.path() / "campaign.txt",
            canonical.substr(0, canonical.size() / 2));
  sweep::FsckOptions options;
  options.expectedCampaign = canonical;
  const auto torn = sweep::fsckCampaignStore(dir.path(), options);
  EXPECT_TRUE(hasDamage(torn, sweep::FsckDamage::TornCampaignFile));
  EXPECT_FALSE(std::filesystem::exists(dir.path() / "campaign.txt"));

  // A complete but *different* campaign is not damage: the store's
  // wrong-campaign guard (initialize throwing) must stay in force.
  writeText(dir.path() / "campaign.txt",
            sweep::parseCampaign("name other\napp example\nconfig A\n", ".")
                .canonicalText());
  const auto different = sweep::fsckCampaignStore(dir.path(), options);
  EXPECT_FALSE(hasDamage(different, sweep::FsckDamage::TornCampaignFile));
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "campaign.txt"));
}

TEST(Fsck, SweepsDeadWritersTempsAndKeepsLiveOnes) {
  TempDir dir("temps");
  populateStore(dir.path());
  const auto dead = dir.path() / "cells" /
                    ("a.cell.tmp." + std::to_string(deadPid()) + ".0");
  const auto live = dir.path() / "cells" /
                    ("b.cell.tmp." + std::to_string(getpid()) + ".0");
  writeText(dead, "partial");
  writeText(live, "partial");

  const auto report = sweep::fsckCampaignStore(dir.path(), {});
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::OrphanTemp));
  EXPECT_FALSE(std::filesystem::exists(dead));
  EXPECT_TRUE(std::filesystem::exists(live));  // writer still alive
}

TEST(Fsck, TruncatesTornJournalTailOfDeadWriter) {
  TempDir dir("journal");
  populateStore(dir.path());
  const std::string whole = "{\"t\":0.0,\"event\":\"journal_start\"}\n";
  const auto deadJournal =
      dir.path() / "journal" /
      ("run-1000-" + std::to_string(deadPid()) + ".jsonl");
  writeText(deadJournal, whole + "{\"t\":0.1,\"event\":\"cell_cl");
  const auto liveJournal =
      dir.path() / "journal" /
      ("run-2000-" + std::to_string(getpid()) + ".jsonl");
  writeText(liveJournal, whole + "{\"t\":0.1,\"event\":\"cell_cl");

  const auto report = sweep::fsckCampaignStore(dir.path(), {});
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::TornJournalTail));
  EXPECT_EQ(readText(deadJournal), whole);  // truncated to the last record
  EXPECT_NE(readText(liveJournal), whole);  // live writer untouched
}

TEST(Fsck, DryRunReportsWithoutTouching) {
  TempDir dir("dry_run");
  populateStore(dir.path());
  const auto bad = dir.path() / "cells" / "0123456789abcdef.cell";
  writeText(bad, "not a cell\n");

  sweep::FsckOptions dry;
  dry.repair = false;
  dry.deep = true;
  const auto report = sweep::fsckCampaignStore(dir.path(), dry);
  EXPECT_EQ(report.exitCode(), 1);  // same findings, same exit code
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::TornCell));
  EXPECT_TRUE(std::filesystem::exists(bad));
  EXPECT_FALSE(std::filesystem::exists(dir.path() / "quarantine"));
}

TEST(Fsck, SharedStoreChecksCellsAndModels) {
  TempDir dir("shared");
  sweep::SharedStore shared(dir.path());
  // Seed one valid cell through the real commit path.
  auto campaign = resolveTestCampaign();
  const auto cell = campaign.planCells()[0];
  shared.saveCell(sweep::evaluateCell(campaign, cell));
  writeText(dir.path() / "cells" / "0123456789abcdef.cell", "garbage\n");

  sweep::FsckOptions options;
  options.deep = true;
  const auto report = sweep::fsckSharedStore(dir.path(), options);
  EXPECT_EQ(report.exitCode(), 1);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::TornCell));
  // The valid cell survives and the repaired store passes.
  EXPECT_TRUE(shared.hasCell(cell.key));
  EXPECT_TRUE(sweep::fsckSharedStore(dir.path(), options).clean());
}

// -- archive --------------------------------------------------------------

/// Write a manifest entry + matching object; returns the rendered line.
std::string putArchiveEntry(const std::filesystem::path& root,
                            std::uint64_t seq, const std::string& payload,
                            obs::ArchiveEntry* outEntry = nullptr) {
  obs::ArchiveEntry entry;
  entry.seq = seq;
  entry.kind = "bench";
  entry.app = "engine";
  entry.config = "bench";
  entry.np = 0;
  entry.label = "t" + std::to_string(seq);
  entry.hash = obs::archivePayloadHash(payload);
  entry.bytes = payload.size();
  writeText(root / "objects" / entry.objectName(), payload);
  if (outEntry != nullptr) *outEntry = entry;
  return obs::renderArchiveManifestLine(entry);
}

TEST(FsckArchive, TruncatesTornManifestTail) {
  TempDir dir("tail");
  const std::string line = putArchiveEntry(dir.path(), 1, "payload-1");
  writeText(dir.path() / "MANIFEST.jsonl", line + "{\"schema\":\"iop-ar");

  const auto report = sweep::fsckArchive(dir.path(), {});
  EXPECT_EQ(report.exitCode(), 1);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::TornManifestTail));
  EXPECT_EQ(readText(dir.path() / "MANIFEST.jsonl"), line);
  EXPECT_TRUE(sweep::fsckArchive(dir.path(), {}).clean());
}

TEST(FsckArchive, DropsUnparsableManifestLines) {
  TempDir dir("badline");
  const std::string good = putArchiveEntry(dir.path(), 1, "payload-1");
  writeText(dir.path() / "MANIFEST.jsonl",
            good + "{\"schema\":\"not-an-archive\"}\n");

  const auto report = sweep::fsckArchive(dir.path(), {});
  EXPECT_EQ(report.exitCode(), 1);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::BadManifestLine));
  EXPECT_EQ(readText(dir.path() / "MANIFEST.jsonl"), good);
}

TEST(FsckArchive, MissingReferencedObjectIsUnrecoverable) {
  TempDir dir("missing");
  obs::ArchiveEntry entry;
  const std::string line =
      putArchiveEntry(dir.path(), 1, "payload-1", &entry);
  writeText(dir.path() / "MANIFEST.jsonl", line);
  std::filesystem::remove(dir.path() / "objects" / entry.objectName());

  const auto report = sweep::fsckArchive(dir.path(), {});
  EXPECT_EQ(report.exitCode(), 2);
  EXPECT_TRUE(report.unrecoverable());
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::MissingObject));
  EXPECT_NE(report.render("t").find("UNRECOVERABLE"), std::string::npos);
  // Repair drops the entry so the rest of the archive stays usable.
  EXPECT_EQ(readText(dir.path() / "MANIFEST.jsonl"), "");
  EXPECT_TRUE(sweep::fsckArchive(dir.path(), {}).clean());
}

TEST(FsckArchive, DeepCatchesCorruptObjectPayload) {
  TempDir dir("corrupt");
  obs::ArchiveEntry entry;
  const std::string line =
      putArchiveEntry(dir.path(), 1, "payload-1", &entry);
  writeText(dir.path() / "MANIFEST.jsonl", line);
  writeText(dir.path() / "objects" / entry.objectName(), "bitflipped");

  // The quick check trusts object names; only the deep pass re-hashes.
  EXPECT_TRUE(sweep::fsckArchive(dir.path(), {}).clean());

  sweep::FsckOptions deep;
  deep.deep = true;
  const auto report = sweep::fsckArchive(dir.path(), deep);
  EXPECT_EQ(report.exitCode(), 2);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::CorruptObject));
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "quarantine" /
                                      entry.objectName()));
  EXPECT_TRUE(sweep::fsckArchive(dir.path(), deep).clean());
}

TEST(FsckArchive, TornOrphanObjectsQuarantinedValidOnesKept) {
  TempDir dir("orphans");
  writeText(dir.path() / "MANIFEST.jsonl", "");
  // A valid unreferenced object (a crash between object write and
  // manifest append): kept, a later re-add dedups onto it.
  const std::string payload = "orphan-payload";
  const auto validName = obs::archivePayloadHash(payload) + ".bench.json";
  writeText(dir.path() / "objects" / validName, payload);
  // A torn unreferenced object (name != content): quarantined so a
  // re-add's dedup check does not trust the damaged bytes.
  writeText(dir.path() / "objects" / "00000000deadbeef.bench.json",
            "half-writ");

  const auto report = sweep::fsckArchive(dir.path(), {});
  EXPECT_EQ(report.exitCode(), 1);
  EXPECT_TRUE(hasDamage(report, sweep::FsckDamage::OrphanObject));
  EXPECT_TRUE(std::filesystem::exists(dir.path() / "objects" / validName));
  EXPECT_FALSE(std::filesystem::exists(
      dir.path() / "objects" / "00000000deadbeef.bench.json"));
}

TEST(FsckArchive, ManifestCodecRoundTrips) {
  obs::ArchiveEntry entry;
  entry.seq = 7;
  entry.kind = "capture";
  entry.app = "example";
  entry.config = "A";
  entry.np = 16;
  entry.label = "abc123";
  entry.hash = obs::archivePayloadHash("bytes");
  entry.bytes = 5;
  const std::string line = obs::renderArchiveManifestLine(entry);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  obs::ArchiveEntry parsed;
  ASSERT_TRUE(obs::parseArchiveManifestLine(line, parsed));
  EXPECT_EQ(parsed.seq, entry.seq);
  EXPECT_EQ(parsed.hash, entry.hash);
  EXPECT_EQ(parsed.objectName(), entry.hash + ".capv2");
  EXPECT_FALSE(obs::parseArchiveManifestLine("{\"schema\":\"x\"}", parsed));
  EXPECT_FALSE(obs::parseArchiveManifestLine("torn{", parsed));
}

TEST(Fsck, ReportRenderIsDeterministic) {
  TempDir dir("render");
  populateStore(dir.path());
  writeText(dir.path() / "cells" / "bbbbbbbbbbbbbbbb.cell", "junk\n");
  writeText(dir.path() / "cells" / "aaaaaaaaaaaaaaaa.cell", "junk\n");

  sweep::FsckOptions dry;
  dry.repair = false;
  dry.deep = true;
  const auto a = sweep::fsckCampaignStore(dir.path(), dry);
  const auto b = sweep::fsckCampaignStore(dir.path(), dry);
  EXPECT_EQ(a.render("x"), b.render("x"));
  ASSERT_EQ(a.findings.size(), 2u);
  // Sorted by path: aaaa... before bbbb...
  EXPECT_LT(a.findings[0].path, a.findings[1].path);
  EXPECT_NE(a.render("x").find("torn-cell"), std::string::npos);
}

}  // namespace
