// Crash-consistency harness: enumerate every durability barrier of a
// small campaign + archive sequence, simulate a crash at each one in a
// forked child (util::vfs tears the op and exits with kCrashExitCode),
// then assert that iop-fsck + an idempotent re-run converge on the
// byte-identical tree an uninterrupted run produces.  Also the
// cross-process SharedStore commit-race test: a writer that crashes
// mid-commit never damages what a surviving writer committed.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/archive.hpp"
#include "obs/capture.hpp"
#include "sweep/campaign.hpp"
#include "sweep/executor.hpp"
#include "sweep/fsck.hpp"
#include "sweep/store.hpp"
#include "util/vfs.hpp"

namespace {

using namespace iop;

constexpr const char* kCampaignText =
    "name crash-test\n"
    "app example\n"
    "config A\n"
    "config B\n";

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("iop_crash_harness_" + name)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// All files under `root` as relative-path -> bytes, excluding the
/// forensic directories whose contents legitimately differ after a
/// recovered crash (quarantined damage, per-run journals).
std::map<std::string, std::string> snapshotTree(
    const std::filesystem::path& root) {
  std::map<std::string, std::string> tree;
  if (!std::filesystem::exists(root)) return tree;
  for (auto it = std::filesystem::recursive_directory_iterator(root);
       it != std::filesystem::recursive_directory_iterator(); ++it) {
    const std::string name = it->path().filename().string();
    if (it->is_directory() && (name == "quarantine" || name == "journal")) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file()) continue;
    std::ifstream in(it->path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    tree[it->path().lexically_relative(root).string()] = buffer.str();
  }
  return tree;
}

/// The persistence sequence under test: resolve (model cache under the
/// store), run the 2-cell campaign, then archive the first cell's
/// capture.  Idempotent by construction — the campaign is resumable and
/// the archive add is skipped when the entry already landed — so the
/// same call doubles as the post-crash recovery step.
void runSequence(const std::filesystem::path& storeDir,
                 const std::filesystem::path& archiveDir) {
  auto spec = sweep::parseCampaign(kCampaignText, ".");
  sweep::ResolveOptions resolve;
  resolve.modelCacheDirs.push_back(storeDir / "models");
  auto campaign = sweep::resolveCampaign(spec, resolve);

  sweep::CampaignStore store(storeDir);
  sweep::SweepOptions options;
  options.jobs = 1;  // single writer: the Nth barrier op is always the
                     // same op, so crash points are reproducible
  const auto outcome = sweep::runSweep(campaign, store, options);
  if (outcome.failures != 0) {
    throw std::runtime_error("sweep failed");
  }

  obs::Archive archive(archiveDir);
  const std::string key = campaign.planCells()[0].key;
  const auto capture =
      obs::RunCapture::load(store.capturePath(key).string());
  bool archived = false;
  for (const auto& entry : archive.list()) {
    if (entry.kind == "capture" && entry.label == "crash-harness") {
      archived = true;
    }
  }
  if (!archived) archive.addCapture(capture, "crash-harness");
}

/// Fork a child that arms the crash injector at `point` and runs the
/// sequence; returns the child's exit status (kCrashExitCode when the
/// injected crash fired, 0 when `point` lies beyond the run's last
/// barrier op).
int runCrashChild(std::uint64_t point,
                  const std::filesystem::path& storeDir,
                  const std::filesystem::path& archiveDir) {
  const pid_t pid = fork();
  if (pid == 0) {
    util::vfs::setCrashMode(-1);  // derive the tear mode from the op
    util::vfs::resetBarrierOps();
    util::vfs::setCrashPoint(point);
    try {
      runSequence(storeDir, archiveDir);
    } catch (...) {
      std::_Exit(99);
    }
    std::_Exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CrashHarness, EveryCrashPointConvergesAfterFsckAndRerun) {
  // The uninterrupted reference tree.
  TempDir refStore("ref_store");
  TempDir refArchive("ref_archive");
  runSequence(refStore.path(), refArchive.path());
  const auto expectedStore = snapshotTree(refStore.path());
  const auto expectedArchive = snapshotTree(refArchive.path());
  ASSERT_FALSE(expectedStore.empty());
  ASSERT_FALSE(expectedArchive.empty());

  sweep::FsckOptions fsck;
  fsck.deep = true;
  fsck.expectedCampaign =
      sweep::parseCampaign(kCampaignText, ".").canonicalText();

  TempDir store("store");
  TempDir archive("archive");
  std::uint64_t points = 0;
  bool completed = false;
  for (std::uint64_t p = 1; p <= 64; ++p) {
    std::filesystem::remove_all(store.path());
    std::filesystem::remove_all(archive.path());
    const int rc = runCrashChild(p, store.path(), archive.path());
    if (rc == 0) {
      completed = true;  // p is past the run's last barrier op
      break;
    }
    ASSERT_EQ(rc, util::vfs::kCrashExitCode)
        << "crash point " << p << " died unexpectedly";
    ++points;

    // Recovery: fsck both trees, then the same (idempotent) sequence.
    const auto storeReport =
        sweep::fsckCampaignStore(store.path(), fsck);
    EXPECT_FALSE(storeReport.unrecoverable())
        << storeReport.render("store, crash point " +
                              std::to_string(p));
    sweep::FsckOptions archiveFsck = fsck;
    archiveFsck.expectedCampaign.clear();
    const auto archiveReport =
        sweep::fsckArchive(archive.path(), archiveFsck);
    EXPECT_FALSE(archiveReport.unrecoverable())
        << archiveReport.render("archive, crash point " +
                                std::to_string(p));
    runSequence(store.path(), archive.path());

    EXPECT_EQ(snapshotTree(store.path()), expectedStore)
        << "store diverged after crash point " << p;
    EXPECT_EQ(snapshotTree(archive.path()), expectedArchive)
        << "archive diverged after crash point " << p;

    // A second fsck pass over a recovered tree is always clean.
    EXPECT_TRUE(sweep::fsckCampaignStore(store.path(), fsck).clean());
    EXPECT_TRUE(
        sweep::fsckArchive(archive.path(), archiveFsck).clean());
  }
  EXPECT_TRUE(completed) << "the sweep never ran crash-free";
  // model, campaign.txt, 2 cells, 2 captures, MANIFEST.txt, archive
  // object, archive manifest: at least that many distinct crash points.
  EXPECT_GE(points, 8u);
}

TEST(CrashHarness, SharedStoreCommitRaceSurvivesPartnerCrash) {
  // Two processes commit the same content-addressed key; one dies
  // mid-commit.  Whatever the crash leaves, the survivor's data must be
  // recoverable: intact for tears that never touched the final path,
  // quarantined-and-recomputable for a torn rename over it.
  auto spec = sweep::parseCampaign(kCampaignText, ".");
  auto campaign = sweep::resolveCampaign(spec);
  const auto cellSpec = campaign.planCells()[0];
  const auto cell = sweep::evaluateCell(campaign, cellSpec);
  const std::string expected = cell.render();

  TempDir dir("shared_race");
  sweep::SharedStore shared(dir.path());

  const auto commitInChild = [&](int crashMode) {
    const pid_t pid = fork();
    if (pid == 0) {
      if (crashMode >= 0) {
        util::vfs::setCrashMode(crashMode);
        util::vfs::resetBarrierOps();
        util::vfs::setCrashPoint(1);  // saveCell is one barrier op
      }
      try {
        sweep::SharedStore child(dir.path());
        child.saveCell(cell);
      } catch (...) {
        std::_Exit(99);
      }
      std::_Exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  };

  // The survivor commits first (cross-process, no injection).
  ASSERT_EQ(commitInChild(-1), 0);
  ASSERT_TRUE(shared.hasCell(cellSpec.key));

  // Tear modes 1 (orphaned temp) and 2 (op dropped) never touch the
  // committed path: the survivor's cell stays byte-perfect.
  for (const int mode : {1, 2}) {
    ASSERT_EQ(commitInChild(mode), util::vfs::kCrashExitCode);
    const auto loaded = shared.tryLoadCell(cellSpec.key);
    ASSERT_TRUE(loaded.has_value()) << "tear mode " << mode;
    EXPECT_EQ(loaded->render(), expected);
  }

  // Mode 1 left an orphaned temp from a dead writer; fsck sweeps it.
  const auto report = sweep::fsckSharedStore(dir.path(), {});
  EXPECT_EQ(report.exitCode(), 1);
  bool sawOrphan = false;
  for (const auto& f : report.findings) {
    sawOrphan |= f.damage == sweep::FsckDamage::OrphanTemp;
  }
  EXPECT_TRUE(sawOrphan);

  // Tear mode 0 renames truncated bytes over the survivor's cell — the
  // one genuinely destructive interleaving.  The checksum seal catches
  // it, the load quarantines, and recomputing the pure-function cell
  // restores the store.
  ASSERT_EQ(commitInChild(0), util::vfs::kCrashExitCode);
  std::string whyBad;
  EXPECT_FALSE(shared.tryLoadCell(cellSpec.key, &whyBad).has_value());
  EXPECT_FALSE(whyBad.empty());
  shared.saveCell(sweep::evaluateCell(campaign, cellSpec));
  const auto restored = shared.tryLoadCell(cellSpec.key);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->render(), expected);
}

}  // namespace
