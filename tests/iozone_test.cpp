#include <gtest/gtest.h>

#include <memory>

#include "iozone/iozone.hpp"
#include "sim/engine.hpp"
#include "storage/blockdev.hpp"
#include "storage/topology.hpp"
#include "util/units.hpp"

namespace iop::iozone {
namespace {

using iop::util::MiB;

struct ServerFixture {
  sim::Engine eng;
  storage::Topology topo{eng};
  storage::IoServer* server;

  explicit ServerFixture(double diskBw = 100.0e6) {
    auto& node = topo.addNode("ion", storage::gigabitEthernet());
    storage::DiskParams dp;
    dp.seqReadBw = diskBw;
    dp.seqWriteBw = diskBw;
    dp.positionTime = 8.0e-3;
    storage::ServerParams sp;
    sp.cache.sizeBytes = 64 * MiB;  // small so sweeps stay fast
    server = &topo.addServer(
        node, std::make_unique<storage::SingleDisk>(eng, dp), sp);
  }
};

IozoneParams quickParams() {
  IozoneParams p;
  p.recordSizes = {256 * 1024, 1 * MiB};
  return p;
}

TEST(Iozone, SequentialPeaksNearDeviceSpeed) {
  ServerFixture f;
  auto result = runIozone(f.eng, *f.server, quickParams());
  EXPECT_GT(result.peakWriteBandwidth, 70.0e6);
  EXPECT_LT(result.peakWriteBandwidth, 130.0e6);
  EXPECT_GT(result.peakReadBandwidth, 70.0e6);
}

TEST(Iozone, RandomSlowerThanSequential) {
  ServerFixture f;
  auto result = runIozone(f.eng, *f.server, quickParams());
  double seqRead = 0, rndRead = 0;
  for (const auto& cell : result.cells) {
    if (cell.recordSize != 256 * 1024) continue;
    if (cell.pattern == Pattern::SequentialRead) seqRead = cell.bandwidth;
    if (cell.pattern == Pattern::RandomRead) rndRead = cell.bandwidth;
  }
  EXPECT_GT(seqRead, 0.0);
  EXPECT_LT(rndRead, seqRead * 0.6);  // seeks must hurt
}

TEST(Iozone, LargerRecordsHelpRandomAccess) {
  ServerFixture f;
  IozoneParams p;
  p.recordSizes = {256 * 1024, 4 * MiB};
  p.patterns = {Pattern::RandomRead};
  auto result = runIozone(f.eng, *f.server, p);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_GT(result.cells[1].bandwidth, result.cells[0].bandwidth);
}

TEST(Iozone, FileSizeDefaultsToTwiceCache) {
  // With FZ = 2 * cache, a sequential re-read cannot be served from cache,
  // so the read peak reflects the device, not memory bandwidth.
  ServerFixture f;
  IozoneParams p;
  p.recordSizes = {1 * MiB};
  p.patterns = {Pattern::SequentialRead};
  auto result = runIozone(f.eng, *f.server, p);
  EXPECT_LT(result.peakReadBandwidth, 200.0e6);  // not memory speed
}

TEST(Iozone, RejectsBadRecordSize) {
  ServerFixture f;
  IozoneParams p;
  p.recordSizes = {0};
  EXPECT_THROW(runIozone(f.eng, *f.server, p), std::invalid_argument);
}

TEST(Iozone, TableRendersAllCells) {
  ServerFixture f;
  auto p = quickParams();
  p.patterns = {Pattern::SequentialWrite, Pattern::SequentialRead};
  auto result = runIozone(f.eng, *f.server, p);
  auto text = result.renderTable();
  EXPECT_NE(text.find("seq-write"), std::string::npos);
  EXPECT_NE(text.find("256KB"), std::string::npos);
  EXPECT_EQ(result.cells.size(), 4u);
}

TEST(Iozone, PatternNamesDistinct) {
  EXPECT_STREQ(patternName(Pattern::StridedRead), "strided-read");
  EXPECT_TRUE(isWritePattern(Pattern::RandomWrite));
  EXPECT_FALSE(isWritePattern(Pattern::StridedRead));
}

}  // namespace
}  // namespace iop::iozone
