#include <gtest/gtest.h>

#include <vector>

#include "util/intervals.hpp"
#include "util/rng.hpp"

namespace iop::util {
namespace {

TEST(IntervalSet, InsertDisjoint) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  EXPECT_EQ(s.totalBytes(), 20u);
  EXPECT_EQ(s.intervalCount(), 2u);
}

TEST(IntervalSet, InsertCoalescesOverlap) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(5, 15);
  EXPECT_EQ(s.totalBytes(), 15u);
  EXPECT_EQ(s.intervalCount(), 1u);
}

TEST(IntervalSet, InsertCoalescesTouching) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(10, 20);
  EXPECT_EQ(s.intervalCount(), 1u);
  EXPECT_TRUE(s.contains(0, 20));
}

TEST(IntervalSet, InsertBridgesMultiple) {
  IntervalSet s;
  s.insert(0, 5);
  s.insert(10, 15);
  s.insert(20, 25);
  s.insert(3, 22);
  EXPECT_EQ(s.intervalCount(), 1u);
  EXPECT_EQ(s.totalBytes(), 25u);
}

TEST(IntervalSet, EmptyInsertIgnored) {
  IntervalSet s;
  s.insert(5, 5);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, EraseSplitsInterval) {
  IntervalSet s;
  s.insert(0, 30);
  s.erase(10, 20);
  EXPECT_EQ(s.intervalCount(), 2u);
  EXPECT_EQ(s.totalBytes(), 20u);
  EXPECT_TRUE(s.contains(0, 10));
  EXPECT_TRUE(s.contains(20, 30));
  EXPECT_FALSE(s.contains(9, 11));
}

TEST(IntervalSet, EraseAcrossIntervals) {
  IntervalSet s;
  s.insert(0, 10);
  s.insert(20, 30);
  s.insert(40, 50);
  s.erase(5, 45);
  EXPECT_EQ(s.totalBytes(), 10u);
  EXPECT_TRUE(s.contains(0, 5));
  EXPECT_TRUE(s.contains(45, 50));
}

TEST(IntervalSet, CoveredBytesPartial) {
  IntervalSet s;
  s.insert(10, 20);
  EXPECT_EQ(s.coveredBytes(0, 30), 10u);
  EXPECT_EQ(s.coveredBytes(15, 30), 5u);
  EXPECT_EQ(s.coveredBytes(0, 5), 0u);
}

TEST(IntervalSet, GapsEnumeration) {
  IntervalSet s;
  s.insert(10, 20);
  s.insert(30, 40);
  auto gaps = s.gaps(0, 50);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (IntervalSet::Interval{0, 10}));
  EXPECT_EQ(gaps[1], (IntervalSet::Interval{20, 30}));
  EXPECT_EQ(gaps[2], (IntervalSet::Interval{40, 50}));
}

TEST(IntervalSet, GapsFullyCovered) {
  IntervalSet s;
  s.insert(0, 100);
  EXPECT_TRUE(s.gaps(10, 90).empty());
}

TEST(IntervalSet, GapsFullyUncovered) {
  IntervalSet s;
  auto gaps = s.gaps(5, 15);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].first, 5u);
  EXPECT_EQ(gaps[0].second, 15u);
}

TEST(IntervalSet, ContainsEmptyRangeTrivially) {
  IntervalSet s;
  EXPECT_TRUE(s.contains(7, 7));
}

TEST(IntervalSet, ClearResets) {
  IntervalSet s;
  s.insert(0, 10);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.totalBytes(), 0u);
}

TEST(IntervalSet, StressRandomAgainstBitmap) {
  IntervalSet s;
  std::vector<bool> ref(1000, false);
  std::uint64_t state = 12345;
  auto next = [&state] { return splitmix64(state); };
  for (int i = 0; i < 500; ++i) {
    std::uint64_t a = next() % 1000;
    std::uint64_t b = next() % 1000;
    if (a > b) std::swap(a, b);
    if (next() % 3 == 0) {
      s.erase(a, b);
      for (std::uint64_t k = a; k < b; ++k) ref[k] = false;
    } else {
      s.insert(a, b);
      for (std::uint64_t k = a; k < b; ++k) ref[k] = true;
    }
  }
  std::uint64_t expected = 0;
  for (bool v : ref) expected += v;
  EXPECT_EQ(s.totalBytes(), expected);
  for (std::uint64_t k = 0; k < 1000; k += 7) {
    EXPECT_EQ(s.coveredBytes(k, k + 1), ref[k] ? 1u : 0u) << "at " << k;
  }
}

}  // namespace
}  // namespace iop::util
