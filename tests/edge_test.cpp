// Edge cases and error paths across modules: the inputs a downstream user
// will eventually feed the library by accident.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "configs/configs.hpp"
#include "core/iomodel.hpp"
#include "core/lap.hpp"
#include "core/offsetfn.hpp"
#include "ior/ior.hpp"
#include "monitor/monitor.hpp"
#include "storage/disk.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "storage/blockdev.hpp"
#include "storage/cache.hpp"
#include "storage/filesystem.hpp"
#include "storage/topology.hpp"
#include "util/units.hpp"

namespace iop {
namespace {

using iop::util::KiB;
using iop::util::MiB;

// ------------------------------------------------------------------- sim

TEST(EngineEdge, DrainToleratesBlockedDaemons) {
  sim::Engine eng;
  sim::Event never(eng);
  eng.spawn([](sim::Event& ev) -> sim::Task<void> {
    co_await ev.wait();  // blocks forever
  }(never));
  eng.spawn([](sim::Engine& e) -> sim::Task<void> {
    co_await e.delay(1.0);
  }(eng));
  EXPECT_NO_THROW(eng.drain());  // run() would report a deadlock
  EXPECT_EQ(eng.liveProcesses(), 1);
}

TEST(EngineEdge, SpawnAtPastTimeClampsToNow) {
  sim::Engine eng;
  double ranAt = -1;
  eng.spawn([](sim::Engine& e) -> sim::Task<void> {
    co_await e.delay(5.0);
  }(eng));
  eng.runUntil(3.0);
  eng.spawnAt(1.0, [](sim::Engine& e, double& at) -> sim::Task<void> {
    at = e.now();
    co_return;
  }(eng, ranAt));
  eng.run();
  EXPECT_DOUBLE_EQ(ranAt, 3.0);  // not in the past
}

TEST(EngineEdge, RunUntilExactEventTimeIncludesEvent) {
  sim::Engine eng;
  bool ran = false;
  eng.spawn([](sim::Engine& e, bool& ran) -> sim::Task<void> {
    co_await e.delay(2.0);
    ran = true;
  }(eng, ran));
  eng.runUntil(2.0);
  EXPECT_TRUE(ran);
}

TEST(CondVarEdge, NotifyWithoutWaitersIsNoop) {
  sim::Engine eng;
  sim::CondVar cv(eng);
  cv.notifyAll();
  EXPECT_EQ(cv.waiterCount(), 0u);
  eng.run();
}

TEST(CondVarEdge, WaitersRecheckPredicate) {
  sim::Engine eng;
  sim::CondVar cv(eng);
  int value = 0;
  int observed = -1;
  eng.spawn([](sim::CondVar& cv, int& value, int& observed)
                -> sim::Task<void> {
    while (value < 3) co_await cv.wait();
    observed = value;
  }(cv, value, observed));
  eng.spawn([](sim::Engine& e, sim::CondVar& cv, int& value)
                -> sim::Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(1.0);
      ++value;
      cv.notifyAll();  // spurious for the first two
    }
  }(eng, cv, value));
  eng.run();
  EXPECT_EQ(observed, 3);
}

// --------------------------------------------------------------- storage

TEST(ConcatEdge, RequestCrossingMemberBoundarySplits) {
  sim::Engine eng;
  storage::DiskParams dp;
  std::vector<storage::DiskParams> members{dp, dp};
  storage::Concat jbod(eng, members, 10 * MiB);
  eng.spawn([](storage::Concat& dev) -> sim::Task<void> {
    co_await dev.access(9 * MiB, 2 * MiB, storage::IoOp::Write);
  }(jbod));
  eng.run();
  std::vector<storage::Disk*> disks;
  jbod.collectDisks(disks);
  EXPECT_EQ(disks[0]->counters().bytesWritten, MiB);
  EXPECT_EQ(disks[1]->counters().bytesWritten, MiB);
}

TEST(DiskEdge, SeqWindowBoundaryIsInclusive) {
  sim::Engine eng;
  storage::DiskParams dp;
  dp.seqWindow = 1000;
  storage::Disk disk(eng, dp);
  eng.spawn([](storage::Disk& d) -> sim::Task<void> {
    co_await d.access(0, 500, storage::IoOp::Read);
    co_await d.access(500 + 1000, 500, storage::IoOp::Read);  // at window
    co_await d.access(2000 + 1001, 500, storage::IoOp::Read);  // past it
  }(disk));
  eng.run();
  EXPECT_EQ(disk.counters().positionEvents, 1u);
}

TEST(CacheEdge, WriteThroughReachesDeviceSynchronously) {
  sim::Engine eng;
  storage::DiskParams dp;
  dp.seqWriteBw = 100.0e6;
  dp.perRequestOverhead = 0;
  storage::SingleDisk dev(eng, dp);
  storage::CacheParams cp;
  cp.writeThrough = true;
  storage::PageCache cache(eng, dev, cp);
  double done = -1;
  eng.spawn([](sim::Engine& e, storage::PageCache& c, double& done)
                -> sim::Task<void> {
    co_await c.write(0, 10 * MiB);
    done = e.now();
  }(eng, cache, done));
  eng.run();  // no flusher daemon exists in write-through mode
  EXPECT_GE(done, 10.0 * MiB / 100.0e6);
  EXPECT_EQ(dev.disk().counters().bytesWritten, 10 * MiB);
  EXPECT_EQ(cache.dirtyBytes(), 0u);
}

TEST(CacheEdge, WriteThroughStillServesReadHits) {
  sim::Engine eng;
  storage::SingleDisk dev(eng, storage::DiskParams{});
  storage::CacheParams cp;
  cp.writeThrough = true;
  storage::PageCache cache(eng, dev, cp);
  eng.spawn([](storage::PageCache& c) -> sim::Task<void> {
    co_await c.write(0, MiB);
    co_await c.read(0, MiB);
    EXPECT_EQ(c.readMissBytes(), 0u);
  }(cache));
  eng.run();
}

TEST(StripedEdge, FilePlacementRotatesFirstServer) {
  sim::Engine eng;
  storage::Topology topo(eng);
  std::vector<storage::IoServer*> ions;
  for (int i = 0; i < 3; ++i) {
    auto& node = topo.addNode("ion" + std::to_string(i),
                              storage::gigabitEthernet());
    ions.push_back(&topo.addServer(
        node,
        std::make_unique<storage::SingleDisk>(eng, storage::DiskParams{}),
        storage::ServerParams{}));
  }
  storage::StripedParams params;
  params.stripeCount = 1;  // one server per file -> placement visible
  auto& fs = topo.mount("/p", std::make_unique<storage::StripedFS>(
                                  eng, ions, nullptr, params));
  auto& client = topo.addNode("c", storage::gigabitEthernet());
  eng.spawn([](storage::Topology& topo, storage::FileSystem& fs,
               storage::Node& client) -> sim::Task<void> {
    for (int fileId = 0; fileId < 3; ++fileId) {
      co_await fs.write(client, fileId, 0, MiB);
    }
    topo.shutdown();
  }(topo, fs, client));
  eng.run();
  for (auto* server : ions) {
    std::vector<storage::Disk*> disks;
    server->device().collectDisks(disks);
    EXPECT_GT(disks[0]->counters().bytesWritten, 0u)
        << server->node().name();
  }
}

TEST(MonitorEdge, TracksMultipleDisksIndependently) {
  sim::Engine eng;
  storage::DiskParams dp;
  dp.perRequestOverhead = 0;
  dp.positionTime = 0;
  storage::SingleDisk a(eng, dp);
  storage::SingleDisk b(eng, dp);
  monitor::DeviceMonitor mon(eng, {&a.disk(), &b.disk()}, 1.0);
  mon.start();
  eng.spawn([](storage::SingleDisk& a, storage::SingleDisk& b,
               monitor::DeviceMonitor& mon) -> sim::Task<void> {
    co_await a.access(0, 50000000, storage::IoOp::Write);
    co_await b.access(0, 50000000, storage::IoOp::Read);
    mon.stop();
  }(a, b, mon));
  eng.run();
  const auto& first = mon.samples().front();
  EXPECT_GT(first.disks[0].sectorsWrittenPerSec, 0);
  EXPECT_DOUBLE_EQ(first.disks[1].sectorsWrittenPerSec, 0);
}

TEST(FaultInjection, DegradedDiskSlowsRequests) {
  sim::Engine eng;
  storage::DiskParams dp;
  dp.seqReadBw = 100.0e6;
  dp.positionTime = 0;
  dp.perRequestOverhead = 0;
  storage::Disk disk(eng, dp);
  double healthy = 0, degraded = 0;
  eng.spawn([](sim::Engine& e, storage::Disk& d, double& healthy,
               double& degraded) -> sim::Task<void> {
    double t0 = e.now();
    co_await d.access(0, 10 * MiB, storage::IoOp::Read);
    healthy = e.now() - t0;
    d.setDegradation(4.0);
    t0 = e.now();
    co_await d.access(10 * MiB, 10 * MiB, storage::IoOp::Read);
    degraded = e.now() - t0;
    d.setDegradation(1.0);
  }(eng, disk, healthy, degraded));
  eng.run();
  EXPECT_NEAR(degraded, healthy * 4, 1e-9);
  EXPECT_THROW(disk.setDegradation(0.5), std::invalid_argument);
}

TEST(FaultInjection, StragglerMemberDragsDownTheArray) {
  // A RAID0 is as fast as its slowest member: degrade one disk 8x and the
  // striped array's large-request service time follows it.
  auto measure = [](double degradeFactor) {
    sim::Engine eng;
    storage::DiskParams dp;
    dp.seqReadBw = 100.0e6;
    dp.positionTime = 0;
    dp.perRequestOverhead = 0;
    std::vector<storage::DiskParams> members(4, dp);
    storage::Raid0 raid(eng, members, 256 * 1024);
    std::vector<storage::Disk*> disks;
    raid.collectDisks(disks);
    disks[2]->setDegradation(degradeFactor);
    double t = -1;
    eng.spawn([](sim::Engine& e, storage::Raid0& r, double& t)
                  -> sim::Task<void> {
      co_await r.access(0, 40 * MiB, storage::IoOp::Read);
      t = e.now();
    }(eng, raid, t));
    eng.run();
    return t;
  };
  const double healthy = measure(1.0);
  const double withStraggler = measure(8.0);
  EXPECT_NEAR(withStraggler, healthy * 8, healthy * 0.01);
}

TEST(FaultInjection, MonitorSpotsTheDegradedDisk) {
  // The iostat view makes the straggler obvious: it stays busy far longer
  // than its peers for the same per-member byte count.
  sim::Engine eng;
  storage::DiskParams dp;
  dp.positionTime = 0;
  dp.perRequestOverhead = 0;
  std::vector<storage::DiskParams> members(3, dp);
  storage::Raid0 raid(eng, members, 256 * 1024);
  std::vector<storage::Disk*> disks;
  raid.collectDisks(disks);
  disks[1]->setDegradation(6.0);
  monitor::DeviceMonitor mon(eng, disks, 0.5);
  mon.start();
  eng.spawn([](storage::Raid0& r, monitor::DeviceMonitor& mon)
                -> sim::Task<void> {
    for (int i = 0; i < 4; ++i) {
      co_await r.access(static_cast<std::uint64_t>(i) * 30 * MiB, 30 * MiB,
                        storage::IoOp::Write);
    }
    mon.stop();
  }(raid, mon));
  eng.run();
  double busy[3] = {0, 0, 0};
  for (const auto& sample : mon.samples()) {
    for (int d = 0; d < 3; ++d) busy[d] += sample.disks[d].utilization;
  }
  EXPECT_GT(busy[1], busy[0] * 3);
  EXPECT_GT(busy[1], busy[2] * 3);
}

// ------------------------------------------------------------------ core

TEST(SegmentEdge, MaxCycleOneDisablesCycleDetection) {
  std::vector<trace::Record> recs;
  for (int i = 0; i < 6; ++i) {
    trace::Record r;
    r.rank = 0;
    r.fileId = 1;
    r.op = i % 2 == 0 ? "MPI_File_read" : "MPI_File_write";
    r.offsetUnits = static_cast<std::uint64_t>(i / 2) * 100;
    r.tick = static_cast<std::uint64_t>(i) + 1;
    r.requestBytes = 100;
    recs.push_back(r);
  }
  core::SegmentOptions opt;
  opt.maxCycle = 1;
  auto segs = core::segmentRecords(recs, opt);
  EXPECT_EQ(segs.size(), 6u);  // no (R,W) cycle allowed
  opt.maxCycle = 2;
  EXPECT_EQ(core::segmentRecords(recs, opt).size(), 1u);
}

TEST(SegmentEdge, EmptyInputGivesNoSegments) {
  EXPECT_TRUE(core::segmentRecords({}).empty());
  EXPECT_TRUE(core::extractLaps({}).empty());
}

TEST(SegmentEdge, InvalidMaxCycleRejected) {
  std::vector<trace::Record> recs(1);
  recs[0].op = "MPI_File_write";
  core::SegmentOptions opt;
  opt.maxCycle = 0;
  EXPECT_THROW(core::segmentRecords(recs, opt), std::invalid_argument);
}

TEST(OffsetFnEdge, RendersIrregularAndZero) {
  core::OffsetFn irregular;
  EXPECT_EQ(irregular.render(1024, 4), "(irregular)");
  core::OffsetFn zero;
  zero.exact = true;
  EXPECT_EQ(zero.render(1024, 4), "0");
}

TEST(OffsetFnEdge, EvalClampsNegativeToZero) {
  core::OffsetFn fn;
  fn.exact = true;
  fn.aBytes = -100;
  fn.bBytes = 50;
  EXPECT_EQ(fn.eval(3, 0), 0u);
}

TEST(OffsetFnEdge, FitRejectsEmptyAndMismatchedInput) {
  EXPECT_THROW(core::fitRankOffsets({}, {}), std::invalid_argument);
  EXPECT_THROW(core::fitRankOffsets({0, 1}, {5}), std::invalid_argument);
  EXPECT_THROW(core::fitPhaseFamily({}), std::invalid_argument);
}

TEST(ModelEdge, LoadRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(core::IOModel::load("/nonexistent/m.model"),
               std::runtime_error);
  const auto path =
      std::filesystem::temp_directory_path() / "malformed.model";
  {
    std::ofstream out(path);
    out << "# iop-model v1\napp broken\n";  // no np
  }
  EXPECT_THROW(core::IOModel::load(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(ModelEdge, EmptyTraceYieldsEmptyModel) {
  trace::TraceData data;
  data.appName = "empty";
  data.np = 2;
  data.perRank.resize(2);
  data.commEventsPerRank.assign(2, 0);
  auto model = core::extractModel(data);
  EXPECT_TRUE(model.phases().empty());
  EXPECT_EQ(model.totalWeightBytes(), 0u);
  EXPECT_FALSE(model.renderSummary().empty());
}

// ------------------------------------------------------------------- ior

TEST(IorEdge, MultiSegmentOffsetsStayDisjoint) {
  auto cfg = configs::makeConfig(configs::ConfigId::A);
  trace::Tracer tracer("ior", 2);
  ior::IorParams p;
  p.mount = cfg.mount;
  p.np = 2;
  p.segments = 2;
  p.blockSize = 4 * MiB;
  p.transferSize = 2 * MiB;
  p.doRead = false;
  ior::runIor(cfg, p, &tracer);
  // Segment layout: s*np*b + r*b + i*t — all offsets distinct.
  std::set<std::uint64_t> offsets;
  for (const auto& recs : tracer.data().perRank) {
    for (const auto& rec : recs) offsets.insert(rec.offsetUnits);
  }
  EXPECT_EQ(offsets.size(), 8u);  // 2 ranks * 2 segments * 2 transfers
}

TEST(IorEdge, ReadOnlyModeStillHasDataToRead) {
  // doWrite is forced on when reads are requested (data must exist), so
  // a "read-only" configuration measures only the read pass.
  auto cfg = configs::makeConfig(configs::ConfigId::A);
  ior::IorParams p;
  p.mount = cfg.mount;
  p.np = 2;
  p.blockSize = 4 * MiB;
  p.transferSize = MiB;
  p.doWrite = true;
  p.doRead = true;
  auto r = ior::runIor(cfg, p);
  EXPECT_GT(r.readTimeSec, 0.0);
}

// ----------------------------------------------------------------- units

TEST(UnitsEdge, FormatApproxScalesAllMagnitudes) {
  EXPECT_EQ(util::formatBytesApprox(512), "512.00B");
  EXPECT_EQ(util::formatBytesApprox(1536), "1.50KB");
  EXPECT_EQ(util::formatBytesApprox(3ull * 1024 * 1024 * 1024 * 1024 / 2),
            "1.50TB");
}

}  // namespace
}  // namespace iop
