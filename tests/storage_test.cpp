#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "storage/blockdev.hpp"
#include "storage/cache.hpp"
#include "storage/disk.hpp"
#include "storage/filesystem.hpp"
#include "storage/network.hpp"
#include "storage/ssd.hpp"
#include "storage/topology.hpp"
#include "util/units.hpp"

namespace iop::storage {
namespace {

using iop::util::MiB;

/// Run a workload task to completion and return the simulated makespan.
template <typename MakeTask>
double timeIt(sim::Engine& eng, MakeTask&& make) {
  double done = -1;
  eng.spawn([](sim::Engine& e, MakeTask& make, double& done)
                -> sim::Task<void> {
    co_await make();
    done = e.now();
  }(eng, make, done));
  eng.run();
  return done;
}

DiskParams testDisk() {
  DiskParams p;
  p.seqReadBw = 100.0e6;
  p.seqWriteBw = 100.0e6;
  p.positionTime = 10.0e-3;
  p.perRequestOverhead = 0;
  return p;
}

TEST(Disk, SequentialAccessPaysNoSeek) {
  sim::Engine eng;
  Disk disk(eng, testDisk());
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await disk.access(0, 10 * MiB, IoOp::Write);
    co_await disk.access(10 * MiB, 10 * MiB, IoOp::Write);
  });
  // 20 MiB at 100e6 B/s; first access is "positioned", second sequential.
  EXPECT_NEAR(t, 20.0 * MiB / 100.0e6, 1e-9);
  EXPECT_EQ(disk.counters().positionEvents, 0u);
}

TEST(Disk, BackwardJumpPaysSeek) {
  sim::Engine eng;
  Disk disk(eng, testDisk());
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await disk.access(100 * MiB, MiB, IoOp::Read);
    co_await disk.access(0, MiB, IoOp::Read);
  });
  EXPECT_NEAR(t, 2.0 * MiB / 100.0e6 + 10.0e-3, 1e-9);
  EXPECT_EQ(disk.counters().positionEvents, 1u);
}

TEST(Disk, SmallForwardJumpStaysSequential) {
  sim::Engine eng;
  Disk disk(eng, testDisk());
  timeIt(eng, [&]() -> sim::Task<void> {
    co_await disk.access(0, MiB, IoOp::Read);
    co_await disk.access(MiB + 4096, MiB, IoOp::Read);  // within seqWindow
  });
  EXPECT_EQ(disk.counters().positionEvents, 0u);
}

TEST(Disk, CountersTrackSectors) {
  sim::Engine eng;
  Disk disk(eng, testDisk());
  timeIt(eng, [&]() -> sim::Task<void> {
    co_await disk.access(0, MiB, IoOp::Write);
    co_await disk.access(MiB, 2 * MiB, IoOp::Read);
  });
  EXPECT_EQ(disk.counters().bytesWritten, MiB);
  EXPECT_EQ(disk.counters().bytesRead, 2 * MiB);
  EXPECT_EQ(disk.counters().sectorsWritten(), MiB / 512);
  EXPECT_EQ(disk.counters().writeOps, 1u);
  EXPECT_EQ(disk.counters().readOps, 1u);
}

TEST(Disk, ConcurrentRequestsSerialize) {
  sim::Engine eng;
  Disk disk(eng, testDisk());
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    std::vector<sim::Task<void>> ops;
    ops.push_back(disk.access(0, 10 * MiB, IoOp::Write));
    ops.push_back(disk.access(10 * MiB, 10 * MiB, IoOp::Write));
    co_await sim::whenAll(eng, std::move(ops));
  });
  EXPECT_NEAR(t, 20.0 * MiB / 100.0e6, 1e-9);
}

std::vector<DiskParams> members(int n) {
  std::vector<DiskParams> v;
  for (int i = 0; i < n; ++i) {
    auto p = testDisk();
    p.name = "d" + std::to_string(i);
    v.push_back(p);
  }
  return v;
}

TEST(Raid0, StripedRequestRunsMembersInParallel) {
  sim::Engine eng;
  Raid0 raid(eng, members(4), 256 * 1024);
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await raid.access(0, 40 * MiB, IoOp::Write);
  });
  // 40 MiB over 4 disks -> 10 MiB each in parallel.
  EXPECT_NEAR(t, 10.0 * MiB / 100.0e6, 1e-6);
}

TEST(Raid0, IdealBandwidthSumsMembers) {
  sim::Engine eng;
  Raid0 raid(eng, members(4), 256 * 1024);
  EXPECT_DOUBLE_EQ(raid.idealBandwidth(IoOp::Read), 400.0e6);
}

TEST(Raid0, SmallRequestTouchesOneMember) {
  sim::Engine eng;
  Raid0 raid(eng, members(4), 256 * 1024);
  timeIt(eng, [&]() -> sim::Task<void> {
    co_await raid.access(0, 64 * 1024, IoOp::Read);
  });
  std::vector<Disk*> disks;
  raid.collectDisks(disks);
  int touched = 0;
  for (Disk* d : disks) touched += d->counters().readOps > 0;
  EXPECT_EQ(touched, 1);
}

TEST(Raid0, RejectsDegenerateConfigs) {
  sim::Engine eng;
  EXPECT_THROW(Raid0(eng, members(1), 256 * 1024), std::invalid_argument);
  EXPECT_THROW(Raid0(eng, members(2), 0), std::invalid_argument);
}

TEST(Raid5, FullStripeWriteUsesAllMembers) {
  sim::Engine eng;
  Raid5 raid(eng, members(5), 256 * 1024);  // row width 1 MiB
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await raid.access(0, 40 * MiB, IoOp::Write);
  });
  // 40 rows; every member (incl. parity) writes 40 * 256 KiB = 10 MiB.
  EXPECT_NEAR(t, 10.0 * MiB / 100.0e6, 1e-6);
  std::vector<Disk*> disks;
  raid.collectDisks(disks);
  for (Disk* d : disks) {
    EXPECT_EQ(d->counters().bytesWritten, 10 * MiB);
  }
}

TEST(Raid5, PartialWritePaysReadModifyWrite) {
  sim::Engine eng;
  Raid5 raid(eng, members(5), 256 * 1024);
  timeIt(eng, [&]() -> sim::Task<void> {
    co_await raid.access(0, 64 * 1024, IoOp::Write);  // sub-chunk write
  });
  std::vector<Disk*> disks;
  raid.collectDisks(disks);
  std::uint64_t reads = 0, writes = 0;
  for (Disk* d : disks) {
    reads += d->counters().readOps;
    writes += d->counters().writeOps;
  }
  // Data chunk RMW + parity chunk RMW.
  EXPECT_EQ(reads, 2u);
  EXPECT_EQ(writes, 2u);
}

TEST(Raid5, ReadSpreadsOverMembers) {
  sim::Engine eng;
  Raid5 raid(eng, members(5), 256 * 1024);
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await raid.access(0, 40 * MiB, IoOp::Read);
  });
  // 40 MiB over 5 members (parity rotates) -> 8 MiB each.
  EXPECT_NEAR(t, 8.0 * MiB / 100.0e6, 1e-6);
}

TEST(Raid5, WriteIdealBandwidthExcludesParity) {
  sim::Engine eng;
  Raid5 raid(eng, members(5), 256 * 1024);
  EXPECT_DOUBLE_EQ(raid.idealBandwidth(IoOp::Write), 400.0e6);
  EXPECT_DOUBLE_EQ(raid.idealBandwidth(IoOp::Read), 500.0e6);
}

TEST(Ssd, RandomCostsSameAsSequential) {
  sim::Engine eng;
  SsdParams sp;
  Ssd ssd(eng, sp);
  double seq = timeIt(eng, [&]() -> sim::Task<void> {
    for (int i = 0; i < 8; ++i) {
      co_await ssd.access(static_cast<std::uint64_t>(i) * MiB, MiB,
                          IoOp::Read);
    }
  });
  sim::Engine eng2;
  Ssd ssd2(eng2, sp);
  double rnd = timeIt(eng2, [&]() -> sim::Task<void> {
    // Same requests, scattered offsets.
    for (std::uint64_t off : {700ull, 3ull, 512ull, 90ull, 41ull, 260ull,
                              777ull, 123ull}) {
      co_await ssd2.access(off * MiB, MiB, IoOp::Read);
    }
  });
  EXPECT_NEAR(seq, rnd, 1e-9);
}

TEST(Ssd, LargeRequestEngagesAllChannels) {
  sim::Engine eng;
  SsdParams sp;
  sp.readBandwidth = 400.0e6;
  sp.channels = 4;
  sp.readLatency = 0;
  Ssd ssd(eng, sp);
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await ssd.access(0, 40 * MiB, IoOp::Read);
  });
  // 40 MiB striped over 4 parallel channels at 100e6 B/s each:
  // 10 MiB per channel.
  EXPECT_NEAR(t, 10.0 * MiB / 100.0e6, 1e-3);
  std::vector<Disk*> chans;
  ssd.collectDisks(chans);
  EXPECT_EQ(chans.size(), 4u);
  for (Disk* c : chans) EXPECT_EQ(c->counters().bytesRead, 10 * MiB);
}

TEST(Ssd, WriteAmplificationSlowsWrites) {
  sim::Engine eng;
  SsdParams sp;
  sp.writeBandwidth = 400.0e6;
  sp.writeAmplification = 2.0;
  sp.writeLatency = 0;
  Ssd ssd(eng, sp);
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await ssd.access(0, 40 * MiB, IoOp::Write);
  });
  // Effective payload rate halves under 2x amplification.
  EXPECT_NEAR(t, 40.0 * MiB / 200.0e6, 1e-3);
  EXPECT_DOUBLE_EQ(ssd.idealBandwidth(IoOp::Write), 200.0e6);
}

TEST(Ssd, RejectsBadParameters) {
  sim::Engine eng;
  SsdParams sp;
  sp.channels = 0;
  EXPECT_THROW(Ssd(eng, sp), std::invalid_argument);
  sp = SsdParams{};
  sp.writeAmplification = 0.5;
  EXPECT_THROW(Ssd(eng, sp), std::invalid_argument);
}

TEST(Ssd, MuchFasterThanDiskForRandomReads) {
  auto measure = [](BlockDevice& dev, sim::Engine& eng) {
    return timeIt(eng, [&]() -> sim::Task<void> {
      for (std::uint64_t off :
           {900ull, 5ull, 333ull, 42ull, 610ull, 77ull, 480ull, 12ull}) {
        co_await dev.access(off * MiB, 256 * 1024, IoOp::Read);
      }
    });
  };
  sim::Engine engDisk;
  SingleDisk disk(engDisk, testDisk());
  const double diskTime = measure(disk, engDisk);
  sim::Engine engSsd;
  Ssd ssd(engSsd, SsdParams{});
  const double ssdTime = measure(ssd, engSsd);
  EXPECT_GT(diskTime, ssdTime * 10);
}

TEST(Concat, RequestLandsOnOneMember) {
  sim::Engine eng;
  Concat jbod(eng, members(3), 1ULL << 40);
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await jbod.access(0, 10 * MiB, IoOp::Write);
  });
  EXPECT_NEAR(t, 10.0 * MiB / 100.0e6, 1e-9);
  std::vector<Disk*> disks;
  jbod.collectDisks(disks);
  EXPECT_EQ(disks[0]->counters().writeOps, 1u);
  EXPECT_EQ(disks[1]->counters().writeOps, 0u);
}

// --------------------------------------------------------------------- Cache

CacheParams testCache() {
  CacheParams p;
  p.sizeBytes = 64 * MiB;
  p.memBandwidth = 1.0e9;
  p.dirtyLimitFraction = 0.5;  // 32 MiB dirty limit
  p.flushChunk = 4 * MiB;
  return p;
}

TEST(Cache, SmallWriteAbsorbedAtMemorySpeed) {
  sim::Engine eng;
  SingleDisk dev(eng, testDisk());
  PageCache cache(eng, dev, testCache());
  double writeDone = -1;
  eng.spawn([](sim::Engine& e, PageCache& c, double& done) -> sim::Task<void> {
    co_await c.write(0, 8 * MiB);
    done = e.now();
    c.shutdown();
  }(eng, cache, writeDone));
  eng.run();
  // The write returns at memcpy speed, well before the disk finishes.
  EXPECT_NEAR(writeDone, 8.0 * MiB / 1.0e9, 1e-6);
  // But the flusher eventually pushed everything to the device.
  EXPECT_EQ(dev.disk().counters().bytesWritten, 8 * MiB);
  EXPECT_EQ(cache.dirtyBytes(), 0u);
}

TEST(Cache, DirtyLimitThrottlesToDiskRate) {
  sim::Engine eng;
  SingleDisk dev(eng, testDisk());
  PageCache cache(eng, dev, testCache());
  double done = -1;
  eng.spawn([](sim::Engine& e, PageCache& c, double& done) -> sim::Task<void> {
    // 200 MiB stream >> 32 MiB dirty limit: must drain at ~disk speed.
    for (int i = 0; i < 50; ++i) {
      co_await c.write(static_cast<std::uint64_t>(i) * 4 * MiB, 4 * MiB);
    }
    done = e.now();
    c.shutdown();
  }(eng, cache, done));
  eng.run();
  const double diskTime = 200.0 * MiB / 100.0e6;
  EXPECT_GT(done, diskTime * 0.7);  // dominated by disk drain
  EXPECT_EQ(dev.disk().counters().bytesWritten, 200 * MiB);
}

TEST(Cache, ReadHitCostsMemoryOnly) {
  sim::Engine eng;
  SingleDisk dev(eng, testDisk());
  PageCache cache(eng, dev, testCache());
  double firstRead = -1, secondRead = -1;
  eng.spawn([](sim::Engine& e, PageCache& c, double& r1,
               double& r2) -> sim::Task<void> {
    co_await c.read(0, 8 * MiB);
    r1 = e.now();
    co_await c.read(0, 8 * MiB);
    r2 = e.now() - r1;
    c.shutdown();
  }(eng, cache, firstRead, secondRead));
  eng.run();
  EXPECT_GT(firstRead, 8.0 * MiB / 100.0e6 * 0.9);  // device speed
  EXPECT_NEAR(secondRead, 8.0 * MiB / 1.0e9, 1e-6);  // memory speed
  EXPECT_EQ(cache.readMissBytes(), 8 * MiB);
  EXPECT_EQ(cache.readHitBytes(), 8 * MiB);
}

TEST(Cache, EvictionDefeatsReuseBeyondCapacity) {
  sim::Engine eng;
  SingleDisk dev(eng, testDisk());
  PageCache cache(eng, dev, testCache());  // 64 MiB capacity
  eng.spawn([](PageCache& c) -> sim::Task<void> {
    // Touch 128 MiB, then re-read the beginning: must miss again.
    for (int i = 0; i < 16; ++i) {
      co_await c.read(static_cast<std::uint64_t>(i) * 8 * MiB, 8 * MiB);
    }
    const auto missBefore = c.readMissBytes();
    co_await c.read(0, 8 * MiB);
    EXPECT_EQ(c.readMissBytes(), missBefore + 8 * MiB);
    c.shutdown();
  }(cache));
  eng.run();
  EXPECT_LE(cache.residentBytes(), 64 * MiB);
}

TEST(Cache, ReadAfterWriteHitsCache) {
  sim::Engine eng;
  SingleDisk dev(eng, testDisk());
  PageCache cache(eng, dev, testCache());
  eng.spawn([](PageCache& c) -> sim::Task<void> {
    co_await c.write(0, 4 * MiB);
    co_await c.read(0, 4 * MiB);
    EXPECT_EQ(c.readMissBytes(), 0u);
    c.shutdown();
  }(cache));
  eng.run();
}

TEST(Cache, FlushAllDrainsDirty) {
  sim::Engine eng;
  SingleDisk dev(eng, testDisk());
  PageCache cache(eng, dev, testCache());
  double flushed = -1;
  eng.spawn([](sim::Engine& e, PageCache& c, SingleDisk& dev,
               double& flushed) -> sim::Task<void> {
    co_await c.write(0, 16 * MiB);
    co_await c.flushAll();
    flushed = e.now();
    EXPECT_EQ(dev.disk().counters().bytesWritten, 16 * MiB);
    c.shutdown();
  }(eng, cache, dev, flushed));
  eng.run();
  EXPECT_GE(flushed, 16.0 * MiB / 100.0e6);
}

TEST(Cache, DisabledCacheGoesStraightToDevice) {
  sim::Engine eng;
  SingleDisk dev(eng, testDisk());
  CacheParams p = testCache();
  p.enabled = false;
  PageCache cache(eng, dev, p);
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await cache.write(0, 10 * MiB);
  });
  EXPECT_NEAR(t, 10.0 * MiB / 100.0e6, 1e-9);
}

// ------------------------------------------------------------------- Network

TEST(Network, TransferTimeMatchesBandwidthPlusLatency) {
  sim::Engine eng;
  Node a(eng, 0, "a", gigabitEthernet());
  Node b(eng, 1, "b", gigabitEthernet());
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await transfer(eng, a, b, 117000000);  // exactly 1 s of payload
  });
  EXPECT_NEAR(t, 1.0 + 60e-6 + 2 * 30e-6, 1e-6);
}

TEST(Network, SameNodeTransferIsMemcpy) {
  sim::Engine eng;
  Node a(eng, 0, "a", gigabitEthernet());
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    co_await transfer(eng, a, a, 400 * MiB);
  });
  EXPECT_LT(t, 0.2);
}

TEST(Network, ReceiverNicSerializesIncomingTransfers) {
  sim::Engine eng;
  Node a(eng, 0, "a", gigabitEthernet());
  Node b(eng, 1, "b", gigabitEthernet());
  Node srv(eng, 2, "srv", gigabitEthernet());
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    std::vector<sim::Task<void>> ops;
    ops.push_back(transfer(eng, a, srv, 117000000));
    ops.push_back(transfer(eng, b, srv, 117000000));
    co_await sim::whenAll(eng, std::move(ops));
  });
  EXPECT_GT(t, 2.0);  // rx is shared: both cannot land in 1 s
}

TEST(Network, DisjointPairsRunConcurrently) {
  sim::Engine eng;
  Node a(eng, 0, "a", gigabitEthernet());
  Node b(eng, 1, "b", gigabitEthernet());
  Node c(eng, 2, "c", gigabitEthernet());
  Node d(eng, 3, "d", gigabitEthernet());
  double t = timeIt(eng, [&]() -> sim::Task<void> {
    std::vector<sim::Task<void>> ops;
    ops.push_back(transfer(eng, a, b, 117000000));
    ops.push_back(transfer(eng, c, d, 117000000));
    co_await sim::whenAll(eng, std::move(ops));
  });
  EXPECT_LT(t, 1.1);
}

// --------------------------------------------------------------- Filesystems

struct NfsFixture {
  sim::Engine eng;
  Topology topo{eng};
  Node* client;
  Node* serverNode;
  IoServer* server;
  FileSystem* fs;

  NfsFixture() {
    client = &topo.addNode("compute0", gigabitEthernet());
    serverNode = &topo.addNode("nas", gigabitEthernet());
    ServerParams sp;
    sp.cache.sizeBytes = 512 * MiB;
    auto dev = std::make_unique<Raid5>(eng, members(5), 256 * 1024);
    server = &topo.addServer(*serverNode, std::move(dev), sp);
    fs = &topo.mount("/nfs", std::make_unique<NfsFS>(eng, *server));
  }

  template <typename MakeTask>
  double run(MakeTask&& make) {
    double done = -1;
    eng.spawn([](sim::Engine& e, Topology& topo, MakeTask& make,
                 double& done) -> sim::Task<void> {
      co_await make();
      done = e.now();
      topo.shutdown();
    }(eng, topo, make, done));
    eng.run();
    return done;
  }
};

TEST(NfsFS, LargeWriteApproachesWireSpeed) {
  NfsFixture f;
  const std::uint64_t bytes = 256 * MiB;
  double t = f.run([&]() -> sim::Task<void> {
    co_await f.fs->write(*f.client, 0, 0, bytes);
  });
  const double bw = static_cast<double>(bytes) / t;
  EXPECT_GT(bw, 80.0e6);
  EXPECT_LT(bw, 117.0e6);
}

TEST(NfsFS, ReadSlowerThanWrite) {
  NfsFixture f;
  const std::uint64_t bytes = 256 * MiB;
  double tw = -1, tr = -1;
  f.run([&]() -> sim::Task<void> {
    const double t0 = f.eng.now();
    co_await f.fs->write(*f.client, 0, 0, bytes);
    const double t1 = f.eng.now();
    co_await f.server->sync();
    // Read a different file so the server cache cannot satisfy it.
    const double t2 = f.eng.now();
    co_await f.fs->read(*f.client, 1, 0, bytes);
    const double t3 = f.eng.now();
    tw = t1 - t0;
    tr = t3 - t2;
  });
  EXPECT_GT(tr, tw);  // request/response round-trips beat write-behind
}

TEST(NfsFS, ConcurrentClientsShareServerLink) {
  sim::Engine eng;
  Topology topo(eng);
  Node& c0 = topo.addNode("c0", gigabitEthernet());
  Node& c1 = topo.addNode("c1", gigabitEthernet());
  Node& nas = topo.addNode("nas", gigabitEthernet());
  ServerParams sp;
  auto dev = std::make_unique<Raid5>(eng, members(5), 256 * 1024);
  IoServer& server = topo.addServer(nas, std::move(dev), sp);
  FileSystem& fs = topo.mount("/nfs", std::make_unique<NfsFS>(eng, server));

  double done = -1;
  eng.spawn([](sim::Engine& e, Topology& topo, FileSystem& fs, Node& c0,
               Node& c1, double& done) -> sim::Task<void> {
    std::vector<sim::Task<void>> ops;
    ops.push_back(fs.write(c0, 0, 0, 128 * MiB));
    ops.push_back(fs.write(c1, 1, 0, 128 * MiB));
    co_await sim::whenAll(e, std::move(ops));
    done = e.now();
    topo.shutdown();
  }(eng, topo, fs, c0, c1, done));
  eng.run();
  const double aggBw = 256.0 * MiB / done;
  EXPECT_LT(aggBw, 117.0e6);  // bounded by the single server NIC
  EXPECT_GT(aggBw, 75.0e6);
}

struct StripedFixture {
  sim::Engine eng;
  Topology topo{eng};
  std::vector<Node*> clients;
  std::vector<IoServer*> servers;
  FileSystem* fs;

  explicit StripedFixture(int nServers, int nClients,
                          StripedFS::Params params = {}) {
    for (int i = 0; i < nClients; ++i) {
      clients.push_back(
          &topo.addNode("c" + std::to_string(i), gigabitEthernet()));
    }
    for (int i = 0; i < nServers; ++i) {
      Node& n = topo.addNode("ion" + std::to_string(i), gigabitEthernet());
      ServerParams sp;
      auto dev = std::make_unique<SingleDisk>(eng, testDisk());
      servers.push_back(&topo.addServer(n, std::move(dev), sp));
    }
    fs = &topo.mount("/pvfs",
                     std::make_unique<StripedFS>(eng, servers, nullptr,
                                                 params));
  }

  template <typename MakeTask>
  double run(MakeTask&& make) {
    double done = -1;
    eng.spawn([](sim::Engine& e, Topology& topo, MakeTask& make,
                 double& done) -> sim::Task<void> {
      co_await make();
      done = e.now();
      topo.shutdown();
    }(eng, topo, make, done));
    eng.run();
    return done;
  }
};

TEST(StripedFS, AggregateExceedsSingleLink) {
  StripedFixture f(3, 3);
  double t = f.run([&]() -> sim::Task<void> {
    std::vector<sim::Task<void>> ops;
    for (int i = 0; i < 3; ++i) {
      ops.push_back(f.fs->write(*f.clients[static_cast<std::size_t>(i)], i,
                                0, 128 * MiB));
    }
    co_await sim::whenAll(f.eng, std::move(ops));
  });
  const double aggBw = 3.0 * 128.0 * MiB / t;
  EXPECT_GT(aggBw, 150.0e6);  // > one GbE link: real parallelism
}

TEST(StripedFS, StripeCountLimitsServersUsed) {
  StripedFS::Params p;
  p.stripeCount = 1;
  StripedFixture f(4, 1, p);
  f.run([&]() -> sim::Task<void> {
    co_await f.fs->write(*f.clients[0], 0, 0, 32 * MiB);
  });
  int touched = 0;
  for (IoServer* s : f.servers) {
    std::vector<Disk*> disks;
    s->device().collectDisks(disks);
    for (Disk* d : disks) touched += d->counters().bytesWritten > 0;
  }
  EXPECT_EQ(touched, 1);
}

TEST(StripedFS, IdealDeviceBandwidthSumsDataServers) {
  StripedFixture f(3, 1);
  EXPECT_DOUBLE_EQ(f.fs->idealDeviceBandwidth(IoOp::Read), 300.0e6);
}

TEST(Topology, MountAndLookup) {
  sim::Engine eng;
  Topology topo(eng);
  Node& n = topo.addNode("nas", gigabitEthernet());
  auto dev = std::make_unique<SingleDisk>(eng, testDisk());
  IoServer& server = topo.addServer(n, std::move(dev), ServerParams{});
  topo.mount("/data", std::make_unique<NfsFS>(eng, server));
  EXPECT_NO_THROW(topo.fs("/data"));
  EXPECT_THROW(topo.fs("/nope"), std::out_of_range);
  EXPECT_THROW(
      topo.mount("/data", std::make_unique<NfsFS>(eng, server)),
      std::invalid_argument);
  EXPECT_EQ(topo.allDisks().size(), 1u);
  EXPECT_NE(topo.describe().find("/data"), std::string::npos);
  topo.shutdown();
  eng.run();
}

TEST(Topology, MetadataOpCompletes) {
  NfsFixture f;
  double t = f.run([&]() -> sim::Task<void> {
    co_await f.fs->metadataOp(*f.client);
  });
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 0.01);
}

}  // namespace
}  // namespace iop::storage
