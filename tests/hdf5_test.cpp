#include <gtest/gtest.h>

#include "analysis/runner.hpp"
#include "apps/flash_io.hpp"
#include "configs/configs.hpp"
#include "hdf5/h5.hpp"
#include "mpi/runtime.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

namespace iop::hdf5 {
namespace {

using configs::ConfigId;
using iop::util::MiB;

/// Run a rank-main against a fresh configuration A with tracing.
trace::TraceData runTraced(mpi::Runtime::RankMain main, int np) {
  auto cfg = configs::makeConfig(ConfigId::A);
  trace::Tracer tracer("h5test", np);
  auto opts = cfg.runtimeOptions(np, &tracer);
  mpi::Runtime runtime(*cfg.topology, opts);
  runtime.runToCompletion(std::move(main));
  return tracer.takeData();
}

TEST(H5File, CreateWritesSuperblockFromRankZeroOnly) {
  auto data = runTraced(
      [](mpi::Rank& rank) -> sim::Task<void> {
        auto file = co_await H5File::create(rank, "/raid/raid5", "x.h5");
        co_await file->close(rank);
      },
      4);
  // Rank 0: superblock + close-time metadata flush; others: no I/O.
  EXPECT_EQ(data.perRank[0].size(), 2u);
  EXPECT_EQ(data.perRank[0][0].requestBytes, kSuperblockBytes);
  EXPECT_EQ(data.perRank[1].size(), 0u);
}

TEST(H5File, DatasetAllocationIsDeterministicAndDisjoint) {
  std::vector<std::uint64_t> offsets;
  runTraced(
      [&offsets](mpi::Rank& rank) -> sim::Task<void> {
        auto file = co_await H5File::create(rank, "/raid/raid5", "x.h5");
        auto a = co_await file->createDataset(rank, "a", 4 * MiB);
        auto b = co_await file->createDataset(rank, "b", 2 * MiB);
        if (rank.id() == 0) {
          offsets.push_back(a.dataOffset());
          offsets.push_back(b.dataOffset());
        }
        EXPECT_GE(a.dataOffset(), kSuperblockBytes + kObjectHeaderBytes);
        EXPECT_GE(b.dataOffset(),
                  a.dataOffset() + a.totalBytes() + kObjectHeaderBytes);
        co_await file->close(rank);
      },
      2);
  ASSERT_EQ(offsets.size(), 2u);
  EXPECT_LT(offsets[0], offsets[1]);
}

TEST(Dataset, CollectiveHyperslabTracesAsWriteAtAll) {
  auto data = runTraced(
      [](mpi::Rank& rank) -> sim::Task<void> {
        auto file = co_await H5File::create(rank, "/raid/raid5", "x.h5");
        auto ds = co_await file->createDataset(rank, "unk", 16 * MiB);
        co_await ds.writeHyperslab(
            rank, static_cast<std::uint64_t>(rank.id()) * 4 * MiB, 4 * MiB);
        co_await file->close(rank);
      },
      4);
  int collectiveWrites = 0;
  for (const auto& rec : data.perRank[2]) {
    collectiveWrites += rec.op == "MPI_File_write_at_all";
  }
  EXPECT_EQ(collectiveWrites, 1);
}

TEST(Dataset, ChunkedLayoutSplitsIntoPerChunkCollectives) {
  auto data = runTraced(
      [](mpi::Rank& rank) -> sim::Task<void> {
        auto file = co_await H5File::create(rank, "/raid/raid5", "x.h5");
        auto ds = co_await file->createDataset(rank, "unk", 16 * MiB,
                                               1 * MiB);
        co_await ds.writeHyperslab(
            rank, static_cast<std::uint64_t>(rank.id()) * 4 * MiB, 4 * MiB);
        co_await file->close(rank);
      },
      4);
  int collectiveWrites = 0;
  for (const auto& rec : data.perRank[1]) {
    collectiveWrites += rec.op == "MPI_File_write_at_all";
  }
  EXPECT_EQ(collectiveWrites, 4);  // 4 MiB in 1 MiB chunks
}

TEST(Dataset, BoundsAndAlignmentChecked) {
  runTraced(
      [](mpi::Rank& rank) -> sim::Task<void> {
        auto file = co_await H5File::create(rank, "/raid/raid5", "x.h5");
        auto ds = co_await file->createDataset(rank, "unk", 4 * MiB,
                                               1 * MiB);
        EXPECT_THROW(ds.writeIndependent(4 * MiB, 1), std::out_of_range);
        if (rank.id() == 0) {
          // Unaligned chunked hyperslab: rejected before any collective
          // call is issued, so no deadlock.
          EXPECT_THROW(ds.writeHyperslab(rank, 100, 1 * MiB),
                       std::invalid_argument);
        }
        co_await rank.barrier();
        EXPECT_THROW(
            (void)file->createDataset(rank, "bad", 3 * MiB, 2 * MiB),
            std::invalid_argument);
        co_await file->close(rank);
      },
      2);
}

TEST(FlashIo, MetadataNoiseSplitsRankZeroFromBulkPhases) {
  // Without filtering, rank 0's object-header writes interleave with its
  // bulk stream: its unknowns end up in a mixed-cycle phase while the
  // other ranks form clean bulk phases — the exact HDF5 complication the
  // paper's Section V points at.
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::FlashIoParams p;
  p.mount = cfg.mount;
  p.unknowns = 6;
  auto run = analysis::runAndTrace(cfg, "flash-io",
                                   apps::makeFlashIo(p), 4);
  bool sawPartial = false;
  bool sawNonRootBulk = false;
  for (const auto& ph : run.model.phases()) {
    if (ph.np() < 4) sawPartial = true;
    if (ph.np() == 3 &&
        ph.weightBytes >= 3 * apps::flashSlabBytes(p)) {
      sawNonRootBulk = true;
    }
  }
  EXPECT_TRUE(sawPartial);
  EXPECT_TRUE(sawNonRootBulk);
  EXPECT_EQ(run.model.totalWeightBytes(), run.trace.totalBytes());
}

TEST(FlashIo, MetadataFilterRestoresCleanBulkPhases) {
  // With the metadata-noise filter, all four ranks' bulk writes group
  // into full-width phases again.
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::FlashIoParams p;
  p.mount = cfg.mount;
  p.unknowns = 6;
  core::PhaseDetectionOptions opt;
  opt.ignoreOpsSmallerThan = 64 * 1024;
  auto run = analysis::runAndTrace(cfg, "flash-io", apps::makeFlashIo(p),
                                   4, opt);
  for (const auto& ph : run.model.phases()) {
    EXPECT_EQ(ph.np(), 4) << "phase " << ph.id;
    EXPECT_EQ(ph.weightBytes, 4 * apps::flashSlabBytes(p));
  }
  EXPECT_EQ(run.model.phases().size(), 6u);
}

TEST(FlashIo, UnknownDatasetsDominateTheWeight) {
  auto cfg = configs::makeConfig(ConfigId::A);
  apps::FlashIoParams p;
  p.mount = cfg.mount;
  p.unknowns = 8;
  auto run = analysis::runAndTrace(cfg, "flash-io",
                                   apps::makeFlashIo(p), 4);
  const std::uint64_t bulk =
      8ull * 4 * apps::flashSlabBytes(p);  // unknowns * np * slab
  const std::uint64_t total = run.model.totalWeightBytes();
  EXPECT_GE(bulk * 100 / total, 90u);  // metadata noise is < 10%
}

}  // namespace
}  // namespace iop::hdf5
