#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/framepool.hpp"
#include "sim/readyqueue.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

namespace iop::sim {
namespace {

Task<void> appendAfter(Engine& eng, Time dt, std::vector<int>& log, int id) {
  co_await eng.delay(dt);
  log.push_back(id);
}

TEST(Engine, TimeAdvancesThroughDelays) {
  Engine eng;
  std::vector<double> seen;
  eng.spawn([](Engine& e, std::vector<double>& out) -> Task<void> {
    out.push_back(e.now());
    co_await e.delay(1.5);
    out.push_back(e.now());
    co_await e.delay(2.5);
    out.push_back(e.now());
  }(eng, seen));
  eng.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 0.0);
  EXPECT_DOUBLE_EQ(seen[1], 1.5);
  EXPECT_DOUBLE_EQ(seen[2], 4.0);
}

TEST(Engine, EventsOrderedByTimeThenSequence) {
  Engine eng;
  std::vector<int> log;
  eng.spawn(appendAfter(eng, 2.0, log, 2));
  eng.spawn(appendAfter(eng, 1.0, log, 1));
  eng.spawn(appendAfter(eng, 2.0, log, 3));  // same time as id 2, spawned later
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ZeroDelayYieldsAfterPendingEvents) {
  Engine eng;
  std::vector<int> log;
  eng.spawn([](Engine& e, std::vector<int>& out) -> Task<void> {
    out.push_back(1);
    co_await e.yield();
    out.push_back(3);
  }(eng, log));
  eng.spawn([](std::vector<int>& out) -> Task<void> {
    out.push_back(2);
    co_return;
  }(log));
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NestedTaskAwaitPropagatesValues) {
  Engine eng;
  double result = 0;
  eng.spawn([](Engine& e, double& out) -> Task<void> {
    auto inner = [](Engine& e) -> Task<double> {
      co_await e.delay(3.0);
      co_return 42.5;
    };
    out = co_await inner(e);
    out += e.now();
  }(eng, result));
  eng.run();
  EXPECT_DOUBLE_EQ(result, 45.5);
}

TEST(Engine, ExceptionInDetachedTaskSurfacesFromRun) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  }(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, ExceptionPropagatesThroughNestedAwait) {
  Engine eng;
  bool caught = false;
  eng.spawn([](Engine& e, bool& caught) -> Task<void> {
    auto failing = [](Engine& e) -> Task<void> {
      co_await e.delay(1.0);
      throw std::logic_error("inner");
    };
    try {
      co_await failing(e);
    } catch (const std::logic_error&) {
      caught = true;
    }
  }(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, DeadlockDetected) {
  Engine eng;
  Event ev(eng);  // not set until after the deadlock fires
  eng.spawn([](Event& ev) -> Task<void> { co_await ev.wait(); }(ev));
  EXPECT_THROW(eng.run(), DeadlockError);
  // Releasing the waiter drains it cleanly (its frame is parked in the
  // event's waiter list, which nobody owns — leaving it would leak).
  ev.set();
  eng.run();
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine eng;
  std::vector<int> log;
  eng.spawn(appendAfter(eng, 1.0, log, 1));
  eng.spawn(appendAfter(eng, 5.0, log, 2));
  eng.runUntil(3.0);
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
  eng.runUntil(10.0);
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Engine, DeterministicEventCount) {
  auto run = [] {
    Engine eng(99);
    std::vector<int> log;
    for (int i = 0; i < 50; ++i) {
      eng.spawn(appendAfter(eng, eng.rng().uniform(), log, i));
    }
    eng.run();
    return std::make_pair(eng.eventsDispatched(), log);
  };
  auto [count1, log1] = run();
  auto [count2, log2] = run();
  EXPECT_EQ(count1, count2);
  EXPECT_EQ(log1, log2);
}

TEST(Latch, ReleasesAllWaitersAtZero) {
  Engine eng;
  Latch latch(eng, 3);
  int released = 0;
  for (int i = 0; i < 2; ++i) {
    eng.spawn([](Latch& l, int& r) -> Task<void> {
      co_await l.wait();
      ++r;
    }(latch, released));
  }
  eng.spawn([](Engine& e, Latch& l) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(1.0);
      l.countDown();
    }
  }(eng, latch));
  eng.run();
  EXPECT_EQ(released, 2);
}

TEST(Latch, WaitAfterZeroCompletesImmediately) {
  Engine eng;
  Latch latch(eng, 0);
  bool done = false;
  eng.spawn([](Latch& l, bool& d) -> Task<void> {
    co_await l.wait();
    d = true;
  }(latch, done));
  eng.run();
  EXPECT_TRUE(done);
}

TEST(Latch, UnderflowThrows) {
  Engine eng;
  Latch latch(eng, 1);
  latch.countDown();
  EXPECT_THROW(latch.countDown(), std::logic_error);
}

TEST(Event, SetWakesAllAndStaysSet) {
  Engine eng;
  Event ev(eng);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Event& ev, int& woke) -> Task<void> {
      co_await ev.wait();
      ++woke;
    }(ev, woke));
  }
  eng.spawn([](Engine& e, Event& ev) -> Task<void> {
    co_await e.delay(2.0);
    ev.set();
  }(eng, ev));
  eng.run();
  EXPECT_EQ(woke, 3);
  EXPECT_TRUE(ev.isSet());
}

TEST(Resource, SerializesCapacityOne) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<double>& out)
                  -> Task<void> {
      co_await r.use(2.0);
      out.push_back(e.now());
    }(eng, res, completions));
  }
  eng.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 2.0);
  EXPECT_DOUBLE_EQ(completions[1], 4.0);
  EXPECT_DOUBLE_EQ(completions[2], 6.0);
}

TEST(Resource, CapacityTwoRunsPairsConcurrently) {
  Engine eng;
  Resource res(eng, 2);
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<double>& out)
                  -> Task<void> {
      co_await r.use(2.0);
      out.push_back(e.now());
    }(eng, res, completions));
  }
  eng.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
  EXPECT_DOUBLE_EQ(completions[3], 4.0);
}

TEST(Resource, FcfsOrderPreserved) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<int>& out, int id)
                  -> Task<void> {
      co_await e.delay(0.1 * id);  // staggered arrival
      co_await r.acquire();
      out.push_back(id);
      co_await e.delay(1.0);
      r.release();
    }(eng, res, order, i));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, BusyIntegralTracksUtilization) {
  Engine eng;
  Resource res(eng, 1);
  eng.spawn([](Engine& e, Resource& r) -> Task<void> {
    co_await r.use(3.0);
    co_await e.delay(1.0);  // idle gap
    co_await r.use(2.0);
  }(eng, res));
  eng.run();
  EXPECT_DOUBLE_EQ(res.busyIntegral(eng.now()), 5.0);
  EXPECT_DOUBLE_EQ(eng.now(), 6.0);
}

TEST(Resource, ReleaseUnderflowThrows) {
  Engine eng;
  Resource res(eng, 1);
  EXPECT_THROW(res.release(), std::logic_error);
}

TEST(Channel, PopWaitsForPush) {
  Engine eng;
  Channel<int> chan(eng);
  std::vector<int> got;
  eng.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    out.push_back(co_await c.pop());
    out.push_back(co_await c.pop());
  }(chan, got));
  eng.spawn([](Engine& e, Channel<int>& c) -> Task<void> {
    co_await e.delay(1.0);
    c.push(10);
    co_await e.delay(1.0);
    c.push(20);
  }(eng, chan));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
}

TEST(Channel, BufferedPopsImmediately) {
  Engine eng;
  Channel<std::string> chan(eng);
  chan.push("a");
  chan.push("b");
  std::vector<std::string> got;
  eng.spawn([](Channel<std::string>& c,
               std::vector<std::string>& out) -> Task<void> {
    out.push_back(co_await c.pop());
    out.push_back(co_await c.pop());
  }(chan, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(WhenAll, WaitsForSlowestChild) {
  Engine eng;
  double doneAt = -1;
  eng.spawn([](Engine& e, double& doneAt) -> Task<void> {
    std::vector<Task<void>> kids;
    for (int i = 1; i <= 3; ++i) {
      kids.push_back([](Engine& e, double dt) -> Task<void> {
        co_await e.delay(dt);
      }(e, static_cast<double>(i)));
    }
    co_await whenAll(e, std::move(kids));
    doneAt = e.now();
  }(eng, doneAt));
  eng.run();
  EXPECT_DOUBLE_EQ(doneAt, 3.0);
}

TEST(WhenAll, EmptySetCompletesImmediately) {
  Engine eng;
  bool done = false;
  eng.spawn([](Engine& e, bool& d) -> Task<void> {
    co_await whenAll(e, {});
    d = true;
  }(eng, done));
  eng.run();
  EXPECT_TRUE(done);
}

TEST(WhenAll, ChildExceptionRethrownAfterAllFinish) {
  Engine eng;
  bool caught = false;
  double caughtAt = 0;
  eng.spawn([](Engine& e, bool& caught, double& at) -> Task<void> {
    std::vector<Task<void>> kids;
    kids.push_back([](Engine& e) -> Task<void> {
      co_await e.delay(1.0);
      throw std::runtime_error("child failed");
    }(e));
    kids.push_back([](Engine& e) -> Task<void> {
      co_await e.delay(5.0);
    }(e));
    try {
      co_await whenAll(e, std::move(kids));
    } catch (const std::runtime_error&) {
      caught = true;
      at = e.now();
    }
  }(eng, caught, caughtAt));
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_DOUBLE_EQ(caughtAt, 5.0);  // waits for all children first
}

// ----------------------------------------------------- scheduler identity
//
// The calendar-queue scheduler must dispatch in exactly the (when, seq)
// order the binary heap did.  Two lines of defense: a golden digest of a
// mixed workload captured against the pre-calendar engine, and a
// randomized lockstep equivalence test against the reference HeapQueue.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnvBytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

struct Step {
  int id;
  double at;
};

Task<void> digestWorker(Engine& eng, Resource& res, std::vector<Step>& log,
                        int id) {
  log.push_back({id, eng.now()});
  co_await eng.delay(0.001 * (id % 7));
  log.push_back({id, eng.now()});
  co_await res.use(0.01 + 0.001 * (id % 3));
  log.push_back({id, eng.now()});
  for (int i = 0; i < 3; ++i) {
    co_await eng.delay(eng.rng().uniform() * 0.1);
    log.push_back({id, eng.now()});
  }
  co_await eng.yield();
  log.push_back({id, eng.now()});
}

std::uint64_t runDigestWorkload(std::uint64_t* orderDigest = nullptr) {
  Engine eng(42);
  Resource res(eng, 2);
  std::vector<Step> log;
  for (int id = 0; id < 64; ++id) {
    if (id % 5 == 0) {
      eng.spawnAt(0.002 * id, digestWorker(eng, res, log, id));
    } else {
      eng.spawn(digestWorker(eng, res, log, id));
    }
  }
  eng.run();
  if (orderDigest != nullptr) *orderDigest = eng.orderDigest();
  std::uint64_t h = kFnvOffset;
  for (const Step& s : log) {
    h = fnvBytes(h, &s.id, sizeof s.id);
    h = fnvBytes(h, &s.at, sizeof s.at);
  }
  const auto dispatched = eng.eventsDispatched();
  h = fnvBytes(h, &dispatched, sizeof dispatched);
  return h;
}

TEST(EngineDigest, GoldenWorkloadDigestIsStable) {
  // Captured from the binary-heap scheduler before the calendar queue
  // landed: 64 interleaved processes contending on a resource, with
  // spawns, delays, rng-driven timing, and yields.  Any scheduler change
  // that reorders a single dispatch, or perturbs one timestamp, moves
  // this digest.
  EXPECT_EQ(runDigestWorkload(), 0xb0c9eff8d3deb1a8ULL);
}

TEST(EngineDigest, OrderDigestIdenticalAcrossRuns) {
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  const std::uint64_t stepsA = runDigestWorkload(&first);
  const std::uint64_t stepsB = runDigestWorkload(&second);
  EXPECT_EQ(stepsA, stepsB);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, kFnvOffset);  // the digest actually accumulated
}

TEST(ReadyQueue, CalendarMatchesHeapOnRandomWorkloads) {
  util::Rng rng(1234);
  detail::CalendarQueue calendar;
  detail::HeapQueue heap;
  Time now = 0.0;
  std::uint64_t seq = 0;

  const auto pushBoth = [&](Time when) {
    const detail::QueuedEvent ev{when, seq++, {}, false};
    calendar.push(ev, now);
    heap.push(ev, now);
  };

  for (int i = 0; i < 32; ++i) pushBoth(rng.uniform() * 2.0);

  int pops = 0;
  while (!heap.empty()) {
    ASSERT_EQ(calendar.size(), heap.size());
    const detail::QueuedEvent* top = calendar.peek(now);
    ASSERT_NE(top, nullptr);
    const detail::QueuedEvent expected = heap.pop(now);
    EXPECT_EQ(top->when, expected.when);
    EXPECT_EQ(top->seq, expected.seq);
    const detail::QueuedEvent got = calendar.pop(now);
    ASSERT_EQ(got.when, expected.when);
    ASSERT_EQ(got.seq, expected.seq);
    now = got.when;
    ++pops;
    if (pops >= 20000) continue;  // stop feeding, drain what's left
    const double r = rng.uniform();
    if (r < 0.2) {
      pushBoth(now);  // FIFO lane
    } else if (r < 0.7) {
      pushBoth(now + rng.uniform() * 0.01);  // clustered near future
    } else if (r < 0.95) {
      pushBoth(now + rng.uniform());  // medium horizon
    } else {
      pushBoth(now + 50.0 + rng.uniform() * 100.0);  // far-future jump
    }
    if (r < 0.1) {
      // Burst of ties at one timestamp: seq must break them.
      const Time t = now + rng.uniform() * 0.05;
      for (int k = 0; k < 5; ++k) pushBoth(t);
    }
  }
  EXPECT_GE(pops, 20000);
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.peek(now), nullptr);
}

// ------------------------------------------------ schedule-time validation

TEST(Engine, RejectsNonFiniteDelay) {
  Engine eng;
  EXPECT_THROW(eng.delay(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(eng.delay(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Engine, RejectsNonFiniteSpawnTime) {
  Engine eng;
  std::vector<int> log;
  EXPECT_THROW(
      eng.spawnAt(std::numeric_limits<double>::quiet_NaN(),
                  appendAfter(eng, 0.0, log, 1)),
      std::invalid_argument);
  EXPECT_THROW(
      eng.spawnAt(std::numeric_limits<double>::infinity(),
                  appendAfter(eng, 0.0, log, 2)),
      std::invalid_argument);
  // A rejected spawn leaks nothing and schedules nothing.
  eng.run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(eng.eventsDispatched(), 0u);
}

TEST(Engine, PastSpawnTimeClampsToNow) {
  Engine eng;
  std::vector<double> at;
  eng.spawn([](Engine& e, std::vector<double>& out) -> Task<void> {
    co_await e.delay(3.0);
    out.push_back(e.now());
  }(eng, at));
  eng.run();
  ASSERT_EQ(at.size(), 1u);
  // now() is 3.0; a spawn dated in the past must run at now, not rewind.
  eng.spawnAt(-5.0, [](Engine& e, std::vector<double>& out) -> Task<void> {
    out.push_back(e.now());
    co_return;
  }(eng, at));
  eng.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[1], 3.0);
}

// ----------------------------------------------------------- frame arena

TEST(FrameArena, ReusesFramesAcrossSpawns) {
  auto& arena = FrameArena::local();
  const auto before = arena.stats();
  Engine eng;
  for (int round = 0; round < 50; ++round) {
    std::vector<int> log;
    eng.spawn(appendAfter(eng, 0.001, log, round));
    eng.run();
    ASSERT_EQ(log.size(), 1u);
  }
  const auto after = arena.stats();
  // Identical frames round after round: at most a few fresh carves, the
  // rest served from the free list.
  EXPECT_GT(after.reuses, before.reuses + 40);
  EXPECT_GT(after.freeFrames, 0u);
}

TEST(FrameArena, OversizedFramesFallBackToHeap) {
  auto& arena = FrameArena::local();
  const auto before = arena.stats();
  Engine eng;
  int out = 0;
  eng.spawn([](Engine& e, int& result) -> Task<void> {
    // A live-across-suspend buffer larger than the largest pooled class
    // forces this frame onto the global-heap fallback path.
    char big[FrameArena::kMaxPooled * 2] = {};
    big[0] = 1;
    co_await e.delay(0.001);
    big[sizeof big - 1] = 2;
    result = big[0] + big[sizeof big - 1];
  }(eng, out));
  eng.run();
  EXPECT_EQ(out, 3);
  const auto after = arena.stats();
  EXPECT_GT(after.fallbacks, before.fallbacks);
}

TEST(FrameArena, TrimReleasesFullyDeadSlabs) {
  // A private arena (not local()): the thread-local one hosts abandoned
  // daemon frames from other tests, which pin their slabs by design.
  FrameArena arena;
  std::vector<void*> frames;
  // Two slabs' worth of 64-byte frames.
  for (int i = 0; i < 1500; ++i) frames.push_back(arena.allocate(64));
  ASSERT_GE(arena.slabCount(), 2u);
  const auto grown = arena.stats();
  EXPECT_EQ(grown.liveFrames, 1500u);

  // Everything still live: trim must be a no-op.
  EXPECT_EQ(arena.trim(), 0u);
  EXPECT_EQ(arena.stats().slabBytes, grown.slabBytes);

  for (void* p : frames) arena.deallocate(p, 64);
  frames.clear();
  const std::size_t released = arena.trim();
  EXPECT_GE(released, 2u * 64u * 1024u);
  EXPECT_EQ(arena.slabCount(), 0u);
  const auto after = arena.stats();
  EXPECT_EQ(after.slabBytes, 0u);
  EXPECT_EQ(after.freeFrames, 0u);
  EXPECT_EQ(after.liveFrames, 0u);
  EXPECT_GT(after.slabsReleased, 0u);

  // The arena must keep working after a full trim.
  void* p = arena.allocate(64);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.stats().slabBytes, 64u * 1024u);
  arena.deallocate(p, 64);
}

TEST(FrameArena, TrimKeepsSlabsHostingLiveFrames) {
  FrameArena arena;
  std::vector<void*> frames;
  for (int i = 0; i < 1500; ++i) frames.push_back(arena.allocate(64));
  ASSERT_GE(arena.slabCount(), 2u);
  const std::size_t slabsBefore = arena.slabCount();

  // Keep the very first frame (first slab) live, free the rest: every
  // other slab dies, the pinned one survives with its free list intact.
  void* pinned = frames.front();
  for (std::size_t i = 1; i < frames.size(); ++i) {
    arena.deallocate(frames[i], 64);
  }
  const std::size_t released = arena.trim();
  EXPECT_GE(released, 64u * 1024u);
  EXPECT_EQ(arena.slabCount(), 1u);
  EXPECT_LT(arena.slabCount(), slabsBefore);
  EXPECT_EQ(arena.stats().liveFrames, 1u);
  EXPECT_GT(arena.stats().freeFrames, 0u);

  // Recycled frames of the surviving slab are still servable.
  const auto reusesBefore = arena.stats().reuses;
  void* again = arena.allocate(64);
  EXPECT_EQ(arena.stats().reuses, reusesBefore + 1);
  arena.deallocate(again, 64);
  arena.deallocate(pinned, 64);
  EXPECT_GE(arena.trim(), 64u * 1024u);
  EXPECT_EQ(arena.slabCount(), 0u);
}

TEST(FrameArena, TrimPreservesActiveBumpSlabWithLiveFrames) {
  FrameArena arena;
  void* keep = arena.allocate(64);
  const auto carved = arena.stats();
  // The bump slab hosts a live frame: trim must not touch it, and the
  // next allocation must keep carving the same slab.
  EXPECT_EQ(arena.trim(), 0u);
  void* next = arena.allocate(64);
  EXPECT_EQ(arena.stats().slabBytes, carved.slabBytes);
  EXPECT_EQ(arena.stats().slabCarves, carved.slabCarves + 1);
  arena.deallocate(next, 64);
  arena.deallocate(keep, 64);
}

TEST(FrameArena, GrowsSlabsUnderConcurrentLoad) {
  auto& arena = FrameArena::local();
  const auto before = arena.stats();
  Engine eng;
  std::vector<int> log;
  // Thousands of frames live at once: the arena must carve several slabs
  // rather than recycle, and release everything back to the free lists.
  for (int id = 0; id < 4000; ++id) {
    eng.spawn(appendAfter(eng, 0.001 * (1 + id % 97), log, id));
  }
  eng.run();
  EXPECT_EQ(log.size(), 4000u);
  const auto after = arena.stats();
  EXPECT_GT(after.slabBytes, before.slabBytes);
  EXPECT_GE(after.slabBytes - before.slabBytes, 2u * 64u * 1024u);
  EXPECT_GT(after.freeFrames, before.freeFrames);
}

}  // namespace
}  // namespace iop::sim
