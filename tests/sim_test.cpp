#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace iop::sim {
namespace {

Task<void> appendAfter(Engine& eng, Time dt, std::vector<int>& log, int id) {
  co_await eng.delay(dt);
  log.push_back(id);
}

TEST(Engine, TimeAdvancesThroughDelays) {
  Engine eng;
  std::vector<double> seen;
  eng.spawn([](Engine& e, std::vector<double>& out) -> Task<void> {
    out.push_back(e.now());
    co_await e.delay(1.5);
    out.push_back(e.now());
    co_await e.delay(2.5);
    out.push_back(e.now());
  }(eng, seen));
  eng.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 0.0);
  EXPECT_DOUBLE_EQ(seen[1], 1.5);
  EXPECT_DOUBLE_EQ(seen[2], 4.0);
}

TEST(Engine, EventsOrderedByTimeThenSequence) {
  Engine eng;
  std::vector<int> log;
  eng.spawn(appendAfter(eng, 2.0, log, 2));
  eng.spawn(appendAfter(eng, 1.0, log, 1));
  eng.spawn(appendAfter(eng, 2.0, log, 3));  // same time as id 2, spawned later
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ZeroDelayYieldsAfterPendingEvents) {
  Engine eng;
  std::vector<int> log;
  eng.spawn([](Engine& e, std::vector<int>& out) -> Task<void> {
    out.push_back(1);
    co_await e.yield();
    out.push_back(3);
  }(eng, log));
  eng.spawn([](std::vector<int>& out) -> Task<void> {
    out.push_back(2);
    co_return;
  }(log));
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NestedTaskAwaitPropagatesValues) {
  Engine eng;
  double result = 0;
  eng.spawn([](Engine& e, double& out) -> Task<void> {
    auto inner = [](Engine& e) -> Task<double> {
      co_await e.delay(3.0);
      co_return 42.5;
    };
    out = co_await inner(e);
    out += e.now();
  }(eng, result));
  eng.run();
  EXPECT_DOUBLE_EQ(result, 45.5);
}

TEST(Engine, ExceptionInDetachedTaskSurfacesFromRun) {
  Engine eng;
  eng.spawn([](Engine& e) -> Task<void> {
    co_await e.delay(1.0);
    throw std::runtime_error("boom");
  }(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, ExceptionPropagatesThroughNestedAwait) {
  Engine eng;
  bool caught = false;
  eng.spawn([](Engine& e, bool& caught) -> Task<void> {
    auto failing = [](Engine& e) -> Task<void> {
      co_await e.delay(1.0);
      throw std::logic_error("inner");
    };
    try {
      co_await failing(e);
    } catch (const std::logic_error&) {
      caught = true;
    }
  }(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, DeadlockDetected) {
  Engine eng;
  Event ev(eng);  // not set until after the deadlock fires
  eng.spawn([](Event& ev) -> Task<void> { co_await ev.wait(); }(ev));
  EXPECT_THROW(eng.run(), DeadlockError);
  // Releasing the waiter drains it cleanly (its frame is parked in the
  // event's waiter list, which nobody owns — leaving it would leak).
  ev.set();
  eng.run();
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine eng;
  std::vector<int> log;
  eng.spawn(appendAfter(eng, 1.0, log, 1));
  eng.spawn(appendAfter(eng, 5.0, log, 2));
  eng.runUntil(3.0);
  EXPECT_EQ(log, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
  eng.runUntil(10.0);
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Engine, DeterministicEventCount) {
  auto run = [] {
    Engine eng(99);
    std::vector<int> log;
    for (int i = 0; i < 50; ++i) {
      eng.spawn(appendAfter(eng, eng.rng().uniform(), log, i));
    }
    eng.run();
    return std::make_pair(eng.eventsDispatched(), log);
  };
  auto [count1, log1] = run();
  auto [count2, log2] = run();
  EXPECT_EQ(count1, count2);
  EXPECT_EQ(log1, log2);
}

TEST(Latch, ReleasesAllWaitersAtZero) {
  Engine eng;
  Latch latch(eng, 3);
  int released = 0;
  for (int i = 0; i < 2; ++i) {
    eng.spawn([](Latch& l, int& r) -> Task<void> {
      co_await l.wait();
      ++r;
    }(latch, released));
  }
  eng.spawn([](Engine& e, Latch& l) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await e.delay(1.0);
      l.countDown();
    }
  }(eng, latch));
  eng.run();
  EXPECT_EQ(released, 2);
}

TEST(Latch, WaitAfterZeroCompletesImmediately) {
  Engine eng;
  Latch latch(eng, 0);
  bool done = false;
  eng.spawn([](Latch& l, bool& d) -> Task<void> {
    co_await l.wait();
    d = true;
  }(latch, done));
  eng.run();
  EXPECT_TRUE(done);
}

TEST(Latch, UnderflowThrows) {
  Engine eng;
  Latch latch(eng, 1);
  latch.countDown();
  EXPECT_THROW(latch.countDown(), std::logic_error);
}

TEST(Event, SetWakesAllAndStaysSet) {
  Engine eng;
  Event ev(eng);
  int woke = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Event& ev, int& woke) -> Task<void> {
      co_await ev.wait();
      ++woke;
    }(ev, woke));
  }
  eng.spawn([](Engine& e, Event& ev) -> Task<void> {
    co_await e.delay(2.0);
    ev.set();
  }(eng, ev));
  eng.run();
  EXPECT_EQ(woke, 3);
  EXPECT_TRUE(ev.isSet());
}

TEST(Resource, SerializesCapacityOne) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<double>& out)
                  -> Task<void> {
      co_await r.use(2.0);
      out.push_back(e.now());
    }(eng, res, completions));
  }
  eng.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 2.0);
  EXPECT_DOUBLE_EQ(completions[1], 4.0);
  EXPECT_DOUBLE_EQ(completions[2], 6.0);
}

TEST(Resource, CapacityTwoRunsPairsConcurrently) {
  Engine eng;
  Resource res(eng, 2);
  std::vector<double> completions;
  for (int i = 0; i < 4; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<double>& out)
                  -> Task<void> {
      co_await r.use(2.0);
      out.push_back(e.now());
    }(eng, res, completions));
  }
  eng.run();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
  EXPECT_DOUBLE_EQ(completions[3], 4.0);
}

TEST(Resource, FcfsOrderPreserved) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<int>& out, int id)
                  -> Task<void> {
      co_await e.delay(0.1 * id);  // staggered arrival
      co_await r.acquire();
      out.push_back(id);
      co_await e.delay(1.0);
      r.release();
    }(eng, res, order, i));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Resource, BusyIntegralTracksUtilization) {
  Engine eng;
  Resource res(eng, 1);
  eng.spawn([](Engine& e, Resource& r) -> Task<void> {
    co_await r.use(3.0);
    co_await e.delay(1.0);  // idle gap
    co_await r.use(2.0);
  }(eng, res));
  eng.run();
  EXPECT_DOUBLE_EQ(res.busyIntegral(eng.now()), 5.0);
  EXPECT_DOUBLE_EQ(eng.now(), 6.0);
}

TEST(Resource, ReleaseUnderflowThrows) {
  Engine eng;
  Resource res(eng, 1);
  EXPECT_THROW(res.release(), std::logic_error);
}

TEST(Channel, PopWaitsForPush) {
  Engine eng;
  Channel<int> chan(eng);
  std::vector<int> got;
  eng.spawn([](Channel<int>& c, std::vector<int>& out) -> Task<void> {
    out.push_back(co_await c.pop());
    out.push_back(co_await c.pop());
  }(chan, got));
  eng.spawn([](Engine& e, Channel<int>& c) -> Task<void> {
    co_await e.delay(1.0);
    c.push(10);
    co_await e.delay(1.0);
    c.push(20);
  }(eng, chan));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{10, 20}));
}

TEST(Channel, BufferedPopsImmediately) {
  Engine eng;
  Channel<std::string> chan(eng);
  chan.push("a");
  chan.push("b");
  std::vector<std::string> got;
  eng.spawn([](Channel<std::string>& c,
               std::vector<std::string>& out) -> Task<void> {
    out.push_back(co_await c.pop());
    out.push_back(co_await c.pop());
  }(chan, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b"}));
}

TEST(WhenAll, WaitsForSlowestChild) {
  Engine eng;
  double doneAt = -1;
  eng.spawn([](Engine& e, double& doneAt) -> Task<void> {
    std::vector<Task<void>> kids;
    for (int i = 1; i <= 3; ++i) {
      kids.push_back([](Engine& e, double dt) -> Task<void> {
        co_await e.delay(dt);
      }(e, static_cast<double>(i)));
    }
    co_await whenAll(e, std::move(kids));
    doneAt = e.now();
  }(eng, doneAt));
  eng.run();
  EXPECT_DOUBLE_EQ(doneAt, 3.0);
}

TEST(WhenAll, EmptySetCompletesImmediately) {
  Engine eng;
  bool done = false;
  eng.spawn([](Engine& e, bool& d) -> Task<void> {
    co_await whenAll(e, {});
    d = true;
  }(eng, done));
  eng.run();
  EXPECT_TRUE(done);
}

TEST(WhenAll, ChildExceptionRethrownAfterAllFinish) {
  Engine eng;
  bool caught = false;
  double caughtAt = 0;
  eng.spawn([](Engine& e, bool& caught, double& at) -> Task<void> {
    std::vector<Task<void>> kids;
    kids.push_back([](Engine& e) -> Task<void> {
      co_await e.delay(1.0);
      throw std::runtime_error("child failed");
    }(e));
    kids.push_back([](Engine& e) -> Task<void> {
      co_await e.delay(5.0);
    }(e));
    try {
      co_await whenAll(e, std::move(kids));
    } catch (const std::runtime_error&) {
      caught = true;
      at = e.now();
    }
  }(eng, caught, caughtAt));
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_DOUBLE_EQ(caughtAt, 5.0);  // waits for all children first
}

}  // namespace
}  // namespace iop::sim
