#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "mpi/comm.hpp"
#include "mpi/file.hpp"
#include "mpi/runtime.hpp"
#include "sim/engine.hpp"
#include "storage/blockdev.hpp"
#include "storage/filesystem.hpp"
#include "storage/topology.hpp"
#include "util/units.hpp"

namespace iop::mpi {
namespace {

using iop::util::MiB;
using storage::DiskParams;
using storage::gigabitEthernet;

/// A minimal test cluster: 4 compute nodes + 1 NFS server ("/fs") and a
/// 3-server striped mount ("/pvfs").
struct Cluster {
  sim::Engine eng;
  storage::Topology topo{eng};
  std::vector<std::size_t> computeNodes;

  Cluster() {
    for (int i = 0; i < 4; ++i) {
      topo.addNode("c" + std::to_string(i), gigabitEthernet());
      computeNodes.push_back(static_cast<std::size_t>(i));
    }
    storage::Node& nas = topo.addNode("nas", gigabitEthernet());
    auto mkdisk = [](const char* n) {
      DiskParams p;
      p.name = n;
      p.seqReadBw = 120.0e6;
      p.seqWriteBw = 110.0e6;
      return p;
    };
    std::vector<DiskParams> raidMembers;
    for (int i = 0; i < 5; ++i) raidMembers.push_back(mkdisk("nas-d"));
    storage::IoServer& nasServer = topo.addServer(
        nas, std::make_unique<storage::Raid5>(eng, raidMembers, 256 * 1024),
        storage::ServerParams{});
    topo.mount("/fs", std::make_unique<storage::NfsFS>(eng, nasServer));

    std::vector<storage::IoServer*> ions;
    for (int i = 0; i < 3; ++i) {
      storage::Node& n =
          topo.addNode("ion" + std::to_string(i), gigabitEthernet());
      ions.push_back(&topo.addServer(
          n, std::make_unique<storage::SingleDisk>(eng, mkdisk("ion-d")),
          storage::ServerParams{}));
    }
    topo.mount("/pvfs", std::make_unique<storage::StripedFS>(
                            eng, ions, nullptr, storage::StripedParams{}));
  }

  Runtime makeRuntime(int np, TraceSink* sink = nullptr, IoHints hints = {}) {
    RuntimeOptions opt;
    opt.np = np;
    opt.computeNodes = computeNodes;
    opt.sink = sink;
    opt.hints = hints;
    return Runtime(topo, opt);
  }
};

/// TraceSink capturing everything in memory.
struct CapturingSink : TraceSink {
  std::vector<IoCallRecord> io;
  std::vector<FileMetaRecord> meta;
  std::vector<std::pair<int, std::string>> comm;

  void onIoCall(const IoCallRecord& r) override { io.push_back(r); }
  void onFileMeta(const FileMetaRecord& r) override { meta.push_back(r); }
  void onCommEvent(int rank, std::uint64_t, const std::string& op,
                   double) override {
    comm.emplace_back(rank, op);
  }
};

TEST(Runtime, LaunchesAllRanksAndReportsMakespan) {
  Cluster cl;
  auto rt = cl.makeRuntime(4);
  std::vector<int> started;
  double elapsed = rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    started.push_back(r.id());
    co_await r.compute(0.5 + 0.1 * r.id());
  });
  EXPECT_EQ(started.size(), 4u);
  EXPECT_NEAR(elapsed, 0.8, 1e-9);  // slowest rank
}

TEST(Runtime, BarrierSynchronizesRanks) {
  Cluster cl;
  auto rt = cl.makeRuntime(4);
  std::vector<double> afterBarrier;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    co_await r.compute(0.1 * r.id());
    co_await r.barrier();
    afterBarrier.push_back(r.engine().now());
  });
  ASSERT_EQ(afterBarrier.size(), 4u);
  for (double t : afterBarrier) EXPECT_NEAR(t, afterBarrier[0], 1e-9);
  EXPECT_GE(afterBarrier[0], 0.3);  // waits for slowest
}

TEST(Runtime, TickCountsMpiEventsOnly) {
  Cluster cl;
  auto rt = cl.makeRuntime(2);
  std::map<int, std::uint64_t> ticks;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    co_await r.compute(0.2);     // not an MPI event
    co_await r.barrier();        // tick 1
    co_await r.bcast(1024);      // tick 2
    co_await r.allreduce(8);     // tick 3
    ticks[r.id()] = r.tick();
  });
  EXPECT_EQ(ticks[0], 3u);
  EXPECT_EQ(ticks[1], 3u);
}

TEST(Runtime, RanksPlacedRoundRobin) {
  Cluster cl;
  auto rt = cl.makeRuntime(4);
  EXPECT_EQ(rt.rank(0).node().name(), "c0");
  EXPECT_EQ(rt.rank(3).node().name(), "c3");
}

TEST(Runtime, SubCommunicatorBarrier) {
  Cluster cl;
  auto rt = cl.makeRuntime(4);
  Comm& gang = rt.createComm({0, 1});
  std::vector<int> done;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    if (r.id() < 2) {
      co_await gang.barrier(r);
      done.push_back(r.id());
    }
    co_return;
  });
  EXPECT_EQ(done.size(), 2u);
}

TEST(Runtime, TwoRuntimesShareOneTopology) {
  Cluster cl;
  RuntimeOptions opts;
  opts.np = 2;
  opts.computeNodes = cl.computeNodes;
  opts.shutdownTopologyOnCompletion = false;
  Runtime first(cl.topo, opts);
  Runtime second(cl.topo, opts);
  first.launch([](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "one.bin", AccessType::Shared);
    co_await f->writeAt(static_cast<std::uint64_t>(r.id()) * MiB, MiB);
  });
  second.launch([](Rank& r) -> sim::Task<void> {
    co_await r.compute(0.5);
    auto f = co_await r.open("/fs", "two.bin", AccessType::Shared);
    co_await f->writeAt(static_cast<std::uint64_t>(r.id()) * MiB, MiB);
  });
  cl.eng.spawn([](Runtime& a, Runtime& b, storage::Topology& topo)
                   -> sim::Task<void> {
    co_await a.completed().wait();
    co_await b.completed().wait();
    topo.shutdown();
  }(first, second, cl.topo));
  cl.eng.run();
  EXPECT_GT(first.appElapsed(), 0.0);
  EXPECT_GT(second.appElapsed(), first.appElapsed());
}

TEST(File, SharedOpenGivesSameLogicalFile) {
  Cluster cl;
  auto rt = cl.makeRuntime(2);
  std::vector<int> logicalIds;
  std::vector<int> fsIds;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "data.bin", AccessType::Shared);
    logicalIds.push_back(f->logicalFileId());
    fsIds.push_back(f->fsFileId());
    co_await f->close();
  });
  ASSERT_EQ(logicalIds.size(), 2u);
  EXPECT_EQ(logicalIds[0], logicalIds[1]);
  EXPECT_EQ(fsIds[0], fsIds[1]);
}

TEST(File, UniqueOpenGivesDistinctExtentNamespaces) {
  Cluster cl;
  auto rt = cl.makeRuntime(2);
  std::vector<int> fsIds;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "per-proc.bin", AccessType::Unique);
    fsIds.push_back(f->fsFileId());
    co_return;
  });
  ASSERT_EQ(fsIds.size(), 2u);
  EXPECT_NE(fsIds[0], fsIds[1]);
}

TEST(File, ViewMapsContiguousWhenBlockEqualsStride) {
  Cluster cl;
  auto rt = cl.makeRuntime(1);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "x", AccessType::Shared);
    f->setView(100, 40, 8, 8);
    auto ext = f->mapToExtents(2, 80);  // 2 etypes in, 2 etypes long
    EXPECT_EQ(ext.size(), 1u);
    if (ext.size() == 1) {
      EXPECT_EQ(ext[0].offset, 100u + 2 * 40);
      EXPECT_EQ(ext[0].bytes, 80u);
    }
    co_return;
  });
}

TEST(File, ViewMapsStridedTiles) {
  Cluster cl;
  auto rt = cl.makeRuntime(1);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "x", AccessType::Shared);
    // etype 4 bytes; tiles of 2 etypes every 6 etypes; disp 0.
    f->setView(0, 4, 2, 6);
    auto ext = f->mapToExtents(0, 16);  // 4 etypes = 2 tiles
    EXPECT_EQ(ext.size(), 2u);
    if (ext.size() == 2) {
      EXPECT_EQ(ext[0].offset, 0u);
      EXPECT_EQ(ext[0].bytes, 8u);
      EXPECT_EQ(ext[1].offset, 24u);  // next tile at stride 6 etypes * 4 B
      EXPECT_EQ(ext[1].bytes, 8u);
    }
    co_return;
  });
}

TEST(File, ViewRejectsBadArguments) {
  Cluster cl;
  auto rt = cl.makeRuntime(1);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "x", AccessType::Shared);
    EXPECT_THROW(f->setView(0, 0, 1, 1), std::invalid_argument);
    EXPECT_THROW(f->setView(0, 4, 4, 2), std::invalid_argument);
    f->setView(0, 4, 1, 1);
    EXPECT_THROW(f->mapToExtents(0, 6), std::invalid_argument);
    co_return;
  });
}

TEST(File, IndividualPointerAdvances) {
  Cluster cl;
  auto rt = cl.makeRuntime(1);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "x", AccessType::Shared);
    co_await f->write(MiB);
    EXPECT_EQ(f->pointer(), MiB);  // etype = 1 byte
    co_await f->write(MiB);
    EXPECT_EQ(f->pointer(), 2 * MiB);
    f->seek(0);
    co_await f->read(MiB);
    EXPECT_EQ(f->pointer(), MiB);
    co_return;
  });
}

TEST(File, TraceRecordsMatchCalls) {
  Cluster cl;
  CapturingSink sink;
  auto rt = cl.makeRuntime(2, &sink);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "traced.bin", AccessType::Shared);
    co_await f->writeAt(static_cast<std::uint64_t>(r.id()) * MiB, MiB);
    co_await f->readAt(static_cast<std::uint64_t>(r.id()) * MiB, MiB);
    co_return;
  });
  ASSERT_EQ(sink.io.size(), 4u);
  int writes = 0, reads = 0;
  for (const auto& rec : sink.io) {
    EXPECT_EQ(rec.requestBytes, MiB);
    EXPECT_GT(rec.duration, 0.0);
    if (rec.op == "MPI_File_write_at") ++writes;
    if (rec.op == "MPI_File_read_at") ++reads;
  }
  EXPECT_EQ(writes, 2);
  EXPECT_EQ(reads, 2);
  // Metadata: explicit offsets, non-collective, shared.
  ASSERT_EQ(sink.meta.size(), 1u);
  EXPECT_TRUE(sink.meta[0].shared);
  EXPECT_TRUE(sink.meta[0].sawExplicitOffsets);
  EXPECT_FALSE(sink.meta[0].sawCollective);
  EXPECT_FALSE(sink.meta[0].sawIndividualPointers);
}

TEST(File, CollectiveWriteCompletesTogetherAndMergesExtents) {
  Cluster cl;
  CapturingSink sink;
  auto rt = cl.makeRuntime(4, &sink);
  std::vector<double> doneAt;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "coll.bin", AccessType::Shared);
    // Rank-contiguous blocks: the union is one contiguous 16 MiB extent.
    co_await f->writeAtAll(static_cast<std::uint64_t>(r.id()) * 4 * MiB,
                           4 * MiB);
    doneAt.push_back(r.engine().now());
    co_return;
  });
  ASSERT_EQ(doneAt.size(), 4u);
  for (double t : doneAt) EXPECT_NEAR(t, doneAt[0], 1e-9);
  ASSERT_EQ(sink.meta.size(), 1u);
  EXPECT_TRUE(sink.meta[0].sawCollective);
}

TEST(File, CollectiveFasterThanIndependentForStridedPattern) {
  // A nested-strided pattern (small tiles per rank): two-phase aggregation
  // should beat independent small writes on NFS — the reason BT-IO uses
  // the FULL subtype.
  auto runWith = [](bool collective) {
    Cluster cl;
    auto rt = cl.makeRuntime(4);
    return rt.runToCompletion([&, collective](Rank& r) -> sim::Task<void> {
      auto f = co_await r.open("/fs", "strided.bin", AccessType::Shared);
      // etype 40 B; each rank owns 64-etype tiles every 256 etypes.
      f->setView(static_cast<std::uint64_t>(r.id()) * 64 * 40, 40, 64, 256);
      for (int step = 0; step < 4; ++step) {
        if (collective) {
          co_await f->writeAtAll(static_cast<std::uint64_t>(step) * 4096,
                                 4096 * 40);
        } else {
          co_await f->writeAt(static_cast<std::uint64_t>(step) * 4096,
                              4096 * 40);
        }
      }
      co_return;
    });
  };
  const double tColl = runWith(true);
  const double tInd = runWith(false);
  EXPECT_LT(tColl, tInd);
}

TEST(File, CollectiveBufferingOffMatchesSimpleSubtype) {
  Cluster cl;
  IoHints hints;
  hints.collectiveBuffering = false;
  auto rt = cl.makeRuntime(4, nullptr, hints);
  double t = rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "simple.bin", AccessType::Shared);
    co_await f->writeAtAll(static_cast<std::uint64_t>(r.id()) * MiB, MiB);
    co_return;
  });
  EXPECT_GT(t, 0.0);
}

TEST(File, MadbenchStyleMetadata) {
  Cluster cl;
  CapturingSink sink;
  auto rt = cl.makeRuntime(2, &sink);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "mad.bin", AccessType::Shared);
    f->seek(static_cast<std::uint64_t>(r.id()) * 8 * MiB);
    co_await f->write(MiB);
    co_await f->read(MiB);
    co_return;
  });
  ASSERT_EQ(sink.meta.size(), 1u);
  EXPECT_TRUE(sink.meta[0].sawIndividualPointers);
  EXPECT_FALSE(sink.meta[0].sawExplicitOffsets);
  EXPECT_FALSE(sink.meta[0].sawCollective);
  EXPECT_TRUE(sink.meta[0].shared);
}

TEST(File, TicksAlignAcrossRanksForSameOpSequence) {
  Cluster cl;
  CapturingSink sink;
  auto rt = cl.makeRuntime(4, &sink);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "t.bin", AccessType::Shared);
    for (int i = 0; i < 3; ++i) {
      co_await f->writeAtAll(
          static_cast<std::uint64_t>(i * 4 + r.id()) * MiB, MiB);
    }
    co_return;
  });
  // Group records by op index: every rank's i-th write has the same tick.
  std::map<int, std::vector<std::uint64_t>> ticksByRank;
  for (const auto& rec : sink.io) ticksByRank[rec.rank].push_back(rec.tick);
  ASSERT_EQ(ticksByRank.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    for (auto& [rank, ticks] : ticksByRank) {
      EXPECT_EQ(ticks[static_cast<std::size_t>(i)],
                ticksByRank[0][static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Runtime, SendRecvRendezvousMovesPayload) {
  Cluster cl;
  auto rt = cl.makeRuntime(2);
  double recvDone = -1;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    if (r.id() == 0) {
      co_await r.compute(1.0);  // sender arrives late
      co_await r.send(1, 117000000);
    } else {
      co_await r.recv(0, 117000000);
      recvDone = r.engine().now();
    }
  });
  // Receive completes only after the sender arrived (t=1.0) plus the
  // ~1 s payload transfer over GbE.
  EXPECT_GT(recvDone, 1.9);
  EXPECT_LT(recvDone, 2.2);
}

TEST(Runtime, SendRecvNonOvertaking) {
  Cluster cl;
  auto rt = cl.makeRuntime(2);
  std::vector<std::uint64_t> received;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    if (r.id() == 0) {
      co_await r.send(1, 1000);
      co_await r.send(1, 2000);
      co_await r.send(1, 3000);
    } else {
      for (std::uint64_t expect : {1000u, 2000u, 3000u}) {
        co_await r.recv(0, expect);
        received.push_back(expect);
      }
    }
  });
  EXPECT_EQ(received, (std::vector<std::uint64_t>{1000, 2000, 3000}));
}

TEST(Runtime, SendRecvSizeMismatchThrows) {
  Cluster cl;
  auto rt = cl.makeRuntime(2);
  EXPECT_THROW(rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
                 if (r.id() == 0) {
                   co_await r.send(1, 100);
                 } else {
                   co_await r.recv(0, 200);
                 }
               }),
               std::runtime_error);
}

TEST(Runtime, SendRecvCountsAsMpiEvent) {
  Cluster cl;
  CapturingSink sink;
  auto rt = cl.makeRuntime(2, &sink);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    if (r.id() == 0) {
      co_await r.send(1, 8);
    } else {
      co_await r.recv(0, 8);
    }
  });
  int sends = 0, recvs = 0;
  for (const auto& [rank, op] : sink.comm) {
    sends += op == "MPI_Send";
    recvs += op == "MPI_Recv";
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
}

TEST(Runtime, HaloExchangePattern) {
  // Ring halo exchange: everyone sends right, receives from the left —
  // ordered to avoid rendezvous deadlock (even ranks send first).
  Cluster cl;
  auto rt = cl.makeRuntime(4);
  int completed = 0;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    const int right = (r.id() + 1) % r.np();
    const int left = (r.id() + r.np() - 1) % r.np();
    if (r.id() % 2 == 0) {
      co_await r.send(right, 65536);
      co_await r.recv(left, 65536);
    } else {
      co_await r.recv(left, 65536);
      co_await r.send(right, 65536);
    }
    ++completed;
  });
  EXPECT_EQ(completed, 4);
}

TEST(File, ReadSievingBeatsPerFragmentRequests) {
  // Dense fragmented read through a strided view: sieving (one spanning
  // read) vs a request/response round trip per fragment.
  auto runWith = [](bool sieve) {
    Cluster cl;
    IoHints hints;
    hints.dataSievingReads = sieve;
    auto rt = cl.makeRuntime(1, nullptr, hints);
    return rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
      auto f = co_await r.open("/fs", "frag.bin", AccessType::Shared);
      // 16 KiB tiles every 32 KiB: 50% density.
      f->setView(0, 1, 16384, 32768);
      co_await f->readAt(0, 4 * MiB);
      co_return;
    });
  };
  const double sieved = runWith(true);
  const double fragmented = runWith(false);
  EXPECT_LT(sieved, fragmented * 0.8);
}

TEST(File, WriteSievingIsOptInAndReadModifiesWrites) {
  Cluster cl;
  IoHints hints;
  hints.dataSievingWrites = true;
  auto rt = cl.makeRuntime(1, nullptr, hints);
  CapturingSink sink;
  (void)sink;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "wsieve.bin", AccessType::Shared);
    f->setView(0, 1, 16384, 32768);
    co_await f->writeAt(0, MiB);
    co_return;
  });
  // The RMW span read must have hit the server cache/device.
  auto& fs = cl.topo.fs("/fs");
  std::uint64_t bytesRead = 0;
  for (auto* server : fs.dataServers()) {
    bytesRead += server->cache().readHitBytes() +
                 server->cache().readMissBytes();
  }
  EXPECT_GE(bytesRead, 2 * MiB - 32768);  // ~the 2 MiB span
}

TEST(File, DataSievingLeavesContiguousRequestsAlone) {
  Cluster cl;
  auto rt = cl.makeRuntime(1);
  CapturingSink sink;
  (void)sink;
  double t = rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "cont.bin", AccessType::Shared);
    co_await f->writeAt(0, 4 * MiB);  // single extent: no sieving path
    co_return;
  });
  // A 4 MiB contiguous write must not trigger the read-modify-write of
  // the sieving path: quicker than 4 MiB read + 4 MiB write.
  EXPECT_LT(t, 4.0 * MiB / 117.0e6 * 1.8);
}

TEST(File, NonBlockingOverlapsWithComputation) {
  Cluster cl;
  auto rt = cl.makeRuntime(1);
  double blockingTime = 0, overlappedTime = 0;
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "nb.bin", AccessType::Shared);
    const double t0 = r.engine().now();
    co_await f->writeAt(0, 64 * MiB);     // blocking
    co_await r.compute(1.0);
    blockingTime = r.engine().now() - t0;

    const double t1 = r.engine().now();
    auto req = f->iwriteAt(64 * MiB, 64 * MiB);  // overlapped
    co_await r.compute(1.0);
    co_await req.wait();
    overlappedTime = r.engine().now() - t1;
  });
  EXPECT_LT(overlappedTime, blockingTime * 0.9);
}

TEST(File, NonBlockingReadCompletesAndTraces) {
  Cluster cl;
  CapturingSink sink;
  auto rt = cl.makeRuntime(1, &sink);
  rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/fs", "nb.bin", AccessType::Shared);
    co_await f->writeAt(0, 4 * MiB);
    auto req = f->ireadAt(0, 4 * MiB);
    EXPECT_FALSE(req.test());
    co_await req.wait();
    EXPECT_TRUE(req.test());
  });
  bool sawIread = false;
  for (const auto& rec : sink.io) {
    if (rec.op == "MPI_File_iread_at") sawIread = true;
  }
  EXPECT_TRUE(sawIread);
  ASSERT_EQ(sink.meta.size(), 1u);
  EXPECT_TRUE(sink.meta[0].sawNonBlocking);
}

TEST(File, StripedMountUsableThroughMpiLayer) {
  Cluster cl;
  auto rt = cl.makeRuntime(4);
  double t = rt.runToCompletion([&](Rank& r) -> sim::Task<void> {
    auto f = co_await r.open("/pvfs", "p.bin", AccessType::Shared);
    co_await f->writeAt(static_cast<std::uint64_t>(r.id()) * 8 * MiB,
                        8 * MiB);
    co_return;
  });
  EXPECT_GT(t, 0.0);
  // 32 MiB over 3 GbE servers: should beat a single 117 MB/s link.
  EXPECT_LT(t, 32.0 * MiB / 117.0e6 * 1.5);
}

}  // namespace
}  // namespace iop::mpi
