// Table XIII: relative error of the I/O-time estimation on configuration C
// for NAS BT-IO class D with 36, 64 and 121 processes.
//
// Paper (Time_CH / Time_MD / error):
//   36p:  1137.50/1239.05 9%   and 2773.32/2701.22 3%
//   64p:  1167.40/1153.05 1%   and 2868.51/2984.75 4%
//   121p: 1253.05/1262.10 1%   and 3065.91/3107.19 1%
// "estimation is better for a higher number of processes; the error is
// less than 10%".
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/replay.hpp"
#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace iop;
  bench::banner("Table XIII",
                "Estimation error on configuration C, BT-IO class D");

  util::Table table("Time_io(CH) vs Time_io(MD) on configuration C");
  table.setHeader({"np", "Phase", "Time_CH (s)", "Time_MD (s)", "error_rel"},
                  {util::Align::Right, util::Align::Left, util::Align::Right,
                   util::Align::Right, util::Align::Right});

  double worstError = 0;
  for (int np : {36, 64, 121}) {
    // Characterize on configuration A, estimate on C with IOR, then run
    // the application on C and compare.
    auto charRun = bench::traceOn(
        configs::ConfigId::A, "btio-D",
        [](const configs::ClusterConfig& cfg) {
          return apps::makeBtio(
              bench::paperBtio(cfg.mount, apps::BtClass::D));
        },
        np);
    analysis::Replayer replayer(
        [] { return configs::makeConfig(configs::ConfigId::C); }, "/home");
    auto estimate = analysis::estimateIoTime(charRun.model, replayer);
    auto measured = bench::traceOn(
        configs::ConfigId::C, "btio-D",
        [](const configs::ClusterConfig& cfg) {
          return apps::makeBtio(
              bench::paperBtio(cfg.mount, apps::BtClass::D));
        },
        np);
    auto rows = analysis::compareEstimate(estimate, measured.model);
    for (const auto& row : rows) {
      table.addRow({std::to_string(np) + "p", row.label(),
                    bench::fmtSec(row.timeCH), bench::fmtSec(row.timeMD),
                    bench::fmtPct(row.errorPct)});
      worstError = std::max(worstError, row.errorPct);
    }
    table.addSeparator();
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("worst relative error: %.1f%% (paper: <10%%)\n", worstError);
  return 0;
}
