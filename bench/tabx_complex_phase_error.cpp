// Section V's observation: "we have observed the increasing of error for
// the complex phases as phase 3 of MADbench2, where the error was about
// the 50%.  This is because ... IOR does not allow to configure complex
// access patterns."
//
// This bench replays MADbench2's phases on configuration A and reports the
// per-phase relative error between BW_CH (IOR, single-op passes averaged
// for the W-R phase) and BW_MD (the traced application) — the mixed phase
// shows by far the largest error, reproducing the paper's limitation.  It
// also evaluates the paper's proposed fix ("we are designing benchmark to
// replicate the I/O when there are 2 or more operations in a phase"): a
// multi-op replayer that interleaves the cycle like the application.
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/multiop.hpp"
#include "analysis/replay.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace iop;

int main() {
  bench::banner("Section V (complex phases)",
                "Replay error of MADbench2's mixed W-R phase");

  // Configuration B: device-bound JBOD disks, where interleaving reads
  // and writes at different offsets costs a seek per operation — the
  // pattern IOR's separate single-op passes cannot reproduce.
  auto run = bench::traceOn(
      configs::ConfigId::B, "madbench2",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeMadbench(bench::paperMadbench(cfg.mount));
      },
      16);

  analysis::Replayer replayer(
      [] { return configs::makeConfig(configs::ConfigId::B); },
      "/mnt/pvfs2");

  util::Table table("MADbench2 on configuration B, per-phase replay error");
  table.setHeader({"Phase", "type", "BW_MD (MB/s)", "BW_CH ior (MB/s)",
                   "err ior", "BW_CH multi-op (MB/s)", "err multi-op"},
                  {util::Align::Left, util::Align::Left, util::Align::Right,
                   util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right});
  for (const auto& phase : run.model.phases()) {
    const double bwMD = phase.measuredBandwidth();
    const double bwIor = replayer.measure(run.model, phase).characterized;
    const double errIor = analysis::relativeErrorPct(bwIor, bwMD);
    std::string bwMulti = "-";
    std::string errMulti = "-";
    if (phase.ops.size() > 1) {
      const double bw =
          analysis::replayMultiOpPhase(
              run.model, phase,
              [] { return configs::makeConfig(configs::ConfigId::B); },
              "/mnt/pvfs2")
              .bandwidth;
      bwMulti = bench::fmtMiBs(bw);
      errMulti = bench::fmtPct(analysis::relativeErrorPct(bw, bwMD));
    }
    table.addRow({std::to_string(phase.id), phase.opTypeLabel(),
                  bench::fmtMiBs(bwMD), bench::fmtMiBs(bwIor),
                  bench::fmtPct(errIor), bwMulti, errMulti});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: on the authors' hardware the single-op IOR replay\n"
      "was ~50%% off for the mixed W-R phase.  In this simulated\n"
      "reproduction the JBOD disks are already seek-bound by cross-process\n"
      "interleaving, so separated single-op passes happen to match the\n"
      "interleaved stream closely; the residual error concentrates in the\n"
      "small tail phase instead (execution skew).  The multi-op replayer —\n"
      "the paper's proposed fix, implemented here — replays the cycle\n"
      "faithfully by construction and is the safer choice for W-R phases.\n");
  return 0;
}
