// Figure 3: local access patterns (LAPs) of the example application.
//
// Paper: each of the 4 processes compresses to one write LAP and one read
// LAP with Rep=40, RequestSize=10612080, Disp=265302, OffsetInit=0.
#include <cstdio>

#include "common.hpp"
#include "core/lap.hpp"

int main() {
  using namespace iop;
  bench::banner("Figure 3", "Access patterns (LAP) of the example app");

  auto run = bench::traceOn(
      configs::ConfigId::A, "example",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeStridedExample(bench::paperExample(cfg.mount));
      },
      4);

  for (int rank = 0; rank < run.trace.np; ++rank) {
    auto laps = core::extractLaps(
        run.trace.perRank[static_cast<std::size_t>(rank)]);
    std::printf("%s\n", core::renderLapTable(laps).c_str());
  }
  std::printf(
      "Paper reference: per process, one write LAP and one read LAP,\n"
      "Rep=40, RequestSize=10612080, Disp=265302, OffsetInit=0.\n");
  return 0;
}
