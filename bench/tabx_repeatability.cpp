// Repeatability: the paper notes "we have evaluated these errors by
// executing several times NAS BT-IO and error was similar for the
// different tests".  This bench repeats the characterize/estimate/measure
// loop across seeds with jittered compute times and reports the spread of
// the per-group relative errors.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/replay.hpp"
#include "analysis/runner.hpp"
#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace iop;
  bench::banner("Repeatability",
                "BT-IO class C, 16 procs: estimation error across 5 "
                "jittered runs (A -> B)");

  util::Table table("per-run relative errors");
  table.setHeader({"seed", "Phase 1-40 err", "Phase 41 err"},
                  {util::Align::Right, util::Align::Right,
                   util::Align::Right});
  std::vector<double> writeErrors, readErrors;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto makeApp = [](const configs::ClusterConfig& cfg) {
      auto p = bench::paperBtio(cfg.mount, apps::BtClass::C);
      p.jitterFraction = 0.3;
      return apps::makeBtio(p);
    };
    auto source = configs::makeConfig(configs::ConfigId::A, seed);
    auto charRun = analysis::runAndTrace(source, "btio-C",
                                         makeApp(source), 16);
    analysis::Replayer replayer(
        [seed] { return configs::makeConfig(configs::ConfigId::B,
                                            seed + 100); },
        "/mnt/pvfs2");
    auto estimate = analysis::estimateIoTime(charRun.model, replayer);
    auto target = configs::makeConfig(configs::ConfigId::B, seed + 200);
    auto measured = analysis::runAndTrace(target, "btio-C",
                                          makeApp(target), 16);
    auto rows = analysis::compareEstimate(estimate, measured.model);
    table.addRow({std::to_string(seed), bench::fmtPct(rows[0].errorPct),
                  bench::fmtPct(rows[1].errorPct)});
    writeErrors.push_back(rows[0].errorPct);
    readErrors.push_back(rows[1].errorPct);
  }
  std::printf("%s\n", table.render().c_str());
  auto spread = [](const std::vector<double>& v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return std::make_pair(*lo, *hi);
  };
  auto [wLo, wHi] = spread(writeErrors);
  auto [rLo, rHi] = spread(readErrors);
  std::printf("write-phase errors span %.1f%%..%.1f%%; read-phase "
              "%.1f%%..%.1f%%\n",
              wLo, wHi, rLo, rHi);
  std::printf("Paper reference: \"error was similar for the different "
              "tests\".\n");
  return 0;
}
