// Extension (the paper's Section V ongoing work): a ROMS-style application
// that opens several files during execution.  The model is extracted per
// file; phases of different files interleave on the shared tick timeline.
#include <cstdio>

#include "apps/roms.hpp"
#include "common.hpp"
#include "core/phase.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;
  bench::banner("Multi-file model (ROMS-style)",
                "grid read + history/restart record appends, 16 procs");

  auto run = bench::traceOn(
      configs::ConfigId::Finisterrae, "roms-upwelling",
      [](const configs::ClusterConfig& cfg) {
        apps::RomsParams p;
        p.mount = cfg.mount;
        return apps::makeRoms(p);
      },
      16);

  std::printf("%zu files, %zu phases in the global model\n\n",
              run.model.files().size(), run.model.phases().size());
  for (const auto& f : run.model.files()) {
    int phases = 0;
    std::uint64_t bytes = 0;
    for (const auto& ph : run.model.phases()) {
      if (ph.idF != f.fileId) continue;
      ++phases;
      bytes += ph.weightBytes;
    }
    std::printf("file %d (%-14s): %2d phases, %s moved, metadata: %s",
                f.fileId, f.path.c_str(), phases,
                util::formatBytesApprox(bytes).c_str(),
                run.model.metadataFor(f.fileId).describe().c_str());
  }
  std::printf("\nglobal phase timeline (file interleaving):\n");
  for (const auto& ph : run.model.phases()) {
    if (ph.id > 8 && ph.id < static_cast<int>(run.model.phases().size())) {
      if (ph.id == 9) std::printf("  ...\n");
      continue;
    }
    std::printf("  phase %2d -> file %d (%s, rep %llu, %s)\n", ph.id, ph.idF,
                ph.opTypeLabel().c_str(),
                static_cast<unsigned long long>(ph.rep),
                util::formatBytesApprox(ph.weightBytes).c_str());
  }
  std::printf("\nPaper reference (Section V): \"this application open "
              "different files in executing time and we can observe that "
              "our model is applicable to each file\".\n");
  return 0;
}
