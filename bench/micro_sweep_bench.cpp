// Sweep-throughput micro-benchmark: how fast the campaign engine turns
// grid cells into committed results, cold vs cached vs parallel.
//
// A 12-cell campaign over the Figs. 2-5 example app is evaluated (a) cold
// with one worker, (b) cold with four workers, and (c) against a warm
// store (pure cache probes).  Cells-per-second is reported as ns_per_op
// per cell; emits BENCH_sweep.json (iop-bench/1) for iop-diff --bench.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common.hpp"
#include "sweep/campaign.hpp"
#include "sweep/executor.hpp"
#include "sweep/store.hpp"
#include "util/table.hpp"

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace iop;
  bench::banner("Sweep throughput",
                "campaign cells/second: cold -j1, cold -j4, warm cache");

  const std::string campaignText =
      "name micro-sweep\n"
      "app example\n"
      "config A\n"
      "config B\n"
      "degrade-disks 1 4\n"
      "degrade-net 1 2 4\n";
  const auto spec = sweep::parseCampaign(campaignText, ".");
  const auto campaign = sweep::resolveCampaign(spec);
  const std::size_t cells = campaign.planCells().size();

  const auto root = std::filesystem::temp_directory_path() /
                    "iop_micro_sweep_bench";
  std::filesystem::remove_all(root);

  struct Case {
    const char* name;
    int jobs;
    bool warm;
  };
  const Case cases[] = {
      {"sweep/cold/j1", 1, false},
      {"sweep/cold/j4", 4, false},
      {"sweep/warm_cache/j1", 1, true},
  };
  constexpr int kRounds = 5;

  util::Table table("12-cell campaign, example app, 5 rounds");
  table.setHeader({"case", "cells", "rounds", "ms/round", "cells/s"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right});
  std::vector<bench::BenchRecord> records;
  for (const auto& c : cases) {
    double totalSeconds = 0;
    for (int round = 0; round < kRounds; ++round) {
      const auto store = root / (std::string(c.name) + "-" +
                                 std::to_string(round));
      sweep::CampaignStore warmup(store.string());
      sweep::SweepOptions options;
      options.jobs = c.jobs;
      if (c.warm) {
        // Populate once, outside the timed region.
        sweep::runSweep(campaign, warmup, options);
      }
      const auto start = std::chrono::steady_clock::now();
      sweep::CampaignStore timed(store.string());
      const auto outcome = sweep::runSweep(campaign, timed, options);
      totalSeconds += secondsSince(start);
      if (outcome.failures != 0 ||
          (c.warm ? outcome.cacheHits : outcome.computed) != cells) {
        std::fprintf(stderr, "unexpected outcome for %s\n", c.name);
        return 1;
      }
    }
    const double perRound = totalSeconds / kRounds;
    const double cellsPerSec =
        perRound > 0 ? static_cast<double>(cells) / perRound : 0;
    char ms[32], cps[32];
    std::snprintf(ms, sizeof ms, "%.2f", perRound * 1e3);
    std::snprintf(cps, sizeof cps, "%.0f", cellsPerSec);
    table.addRow({c.name, std::to_string(cells), std::to_string(kRounds),
                  ms, cps});

    bench::BenchRecord rec;
    rec.name = c.name;
    rec.iterations = kRounds * static_cast<std::int64_t>(cells);
    rec.nsPerOp = perRound / static_cast<double>(cells) * 1e9;
    records.push_back(std::move(rec));
  }
  std::filesystem::remove_all(root);

  std::printf("%s\n", table.render().c_str());
  bench::writeBenchJson("BENCH_sweep.json", records);
  std::printf("wrote %zu results to BENCH_sweep.json\n", records.size());
  std::printf("Expected shape: warm cache is orders of magnitude faster "
              "than cold; on multi-core hosts -j4 beats -j1 (the container "
              "running CI may be single-core, where they tie).\n");
  return 0;
}
