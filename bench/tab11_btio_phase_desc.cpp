// Table XI: I/O phase description of NAS BT-IO subtype FULL for np
// processes, classes C and D.
//
// Paper:
//   Class C, phases 1-40: np W each, initOffset = rs*idP + rs*(ph-1) +
//                         rs*(np-1)*(ph-1)  [= rs*idP + rs*np*(ph-1)]
//   Class C, phase 41:    np R, rep 40, same per-repetition progression
//   Class D: 1-50 / 51 with rep 50.
#include <cstdio>

#include "common.hpp"

namespace {

void describeClass(iop::apps::BtClass cls, int np) {
  using namespace iop;
  auto run = bench::traceOn(
      configs::ConfigId::A, "btio",
      [cls](const configs::ClusterConfig& cfg) {
        return apps::makeBtio(bench::paperBtio(cfg.mount, cls));
      },
      np);
  const auto& phases = run.model.phases();
  const auto& firstWrite = phases.front();
  const auto& readPhase = phases.back();
  std::printf("Class %s (np=%d, rs=%llu bytes):\n", apps::btClassName(cls),
              np,
              static_cast<unsigned long long>(firstWrite.ops[0].rsBytes));
  std::printf("  Phases 1-%zu: %d W in each phase, InitOffset = %s\n",
              phases.size() - 1, firstWrite.np(),
              firstWrite.ops[0]
                  .offsetFn.render(firstWrite.ops[0].rsBytes,
                                   firstWrite.np())
                  .c_str());
  std::printf("  Phase %d:    %d R, Rep = %llu, InitOffset = %s, "
              "disp per rep = rs*np\n",
              readPhase.id, readPhase.np(),
              static_cast<unsigned long long>(readPhase.rep),
              readPhase.ops[0]
                  .offsetFn.render(readPhase.ops[0].rsBytes, readPhase.np())
                  .c_str());
}

}  // namespace

int main() {
  using namespace iop;
  bench::banner("Table XI",
                "I/O phase description of NAS BT-IO subtype FULL");
  describeClass(apps::BtClass::C, 16);
  std::printf("\n");
  describeClass(apps::BtClass::D, 36);
  std::printf(
      "\nPaper reference: class C = 40 write phases + 1 read phase (rep "
      "40);\nclass D = 50 write phases + 1 read phase (rep 50); InitOffset "
      "=\nrs*idP + (rs*(ph-1)) + (rs*(np-1)*(ph-1)) = rs*idP + "
      "rs*np*(ph-1).\n");
  return 0;
}
