// Table IX: I/O system utilization of MADbench2 on configuration A
// (NFS + RAID5): BW_PK from IOzone at device level, BW_MD from the traced
// run, SystemUsage = BW_MD / BW_PK (eq. 5).
//
// Paper row reference (BW in MB/s):
//   1: 128 W   4GB  PK 400  MD 93  usage 23
//   2:  32 R   1GB  PK 350  MD 68  usage 18
//   3: 192 W-R 6GB  PK 375  MD 63  usage 16
//   4:  32 W   1GB  PK 400  MD 89  usage 22
//   5: 128 R   4GB  PK 350  MD 66  usage 19
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/peaks.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;
  bench::banner("Table IX",
                "System usage of MADbench2 on configuration A");

  auto run = bench::traceOn(
      configs::ConfigId::A, "madbench2",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeMadbench(bench::paperMadbench(cfg.mount));
      },
      16);

  auto peakCfg = configs::makeConfig(configs::ConfigId::A);
  auto peaks = analysis::measurePeaks(peakCfg);
  auto rows = analysis::systemUsage(run.model, peaks.writePeak,
                                    peaks.readPeak);

  util::Table table(
      "MADbench2, 16 processes, 4GB file, SHARED, configuration A");
  table.setHeader({"Phase", "#Oper.", "weight", "BW_PK (MB/s)",
                   "BW_MD (MB/s)", "SystemUsage"},
                  {util::Align::Left, util::Align::Left, util::Align::Right,
                   util::Align::Right, util::Align::Right,
                   util::Align::Right});
  for (const auto& row : rows) {
    table.addRow({std::to_string(row.phaseId), row.opsLabel,
                  util::formatBytes(row.weightBytes),
                  bench::fmtMiBs(row.peakBandwidth),
                  bench::fmtMiBs(row.measuredBandwidth),
                  bench::fmtPct(row.usagePct)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper reference: PK 400/350, MD 63-93 MB/s, usage 16-23%% "
              "(\"about 30%% of the I/O subsystem capacity\").\n");
  return 0;
}
