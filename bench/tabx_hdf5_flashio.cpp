// Extension (Section V future work): HDF5-library workloads.
//
// FLASH-IO writes its checkpoint through parallel HDF5: small rank-0
// metadata writes (superblock, object headers, close-time flush)
// interleave with the collective bulk datasets.  Raw phase detection shows
// the problem the paper anticipated — rank 0's bulk stream is split off by
// the metadata noise — and the metadata filter (ignoreOpsSmallerThan)
// restores the clean model, which then estimates like any other.
#include <cstdio>

#include "analysis/replay.hpp"
#include "apps/flash_io.hpp"
#include "common.hpp"
#include "core/phase.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;
  bench::banner("HDF5 / FLASH-IO",
                "Checkpoint through parallel HDF5 on Finisterrae, 16 procs");

  apps::FlashIoParams params;
  auto cfg = configs::makeConfig(configs::ConfigId::Finisterrae);
  params.mount = cfg.mount;
  auto run = analysis::runAndTrace(cfg, "flash-io",
                                   apps::makeFlashIo(params), 16);

  auto summarize = [&run](const core::PhaseDetectionOptions& opt,
                          const char* label) {
    auto phases = core::detectPhases(run.trace, opt);
    int partial = 0;
    int full = 0;
    for (const auto& ph : phases) {
      if (ph.np() == run.trace.np) {
        ++full;
      } else {
        ++partial;
      }
    }
    std::printf("%-28s %3zu phases: %3d full-width, %3d partial "
                "(metadata / rank-0 mixed)\n",
                label, phases.size(), full, partial);
    return phases;
  };

  core::PhaseDetectionOptions raw;
  summarize(raw, "raw detection:");
  core::PhaseDetectionOptions filtered;
  filtered.ignoreOpsSmallerThan = 64 * 1024;
  auto cleanPhases = summarize(filtered, "with metadata filter (64KB):");

  core::IOModel clean(run.trace.appName, run.trace.np, run.trace.files,
                      std::move(cleanPhases));
  std::printf("\nfiltered model (one row per family):\n%s\n",
              core::renderPhaseTable(clean.phases()).c_str());

  analysis::Replayer replayer(
      [] { return configs::makeConfig(configs::ConfigId::Finisterrae); },
      "homesfs");
  auto estimate = analysis::estimateIoTime(clean, replayer);
  std::printf("estimated checkpoint I/O time on Finisterrae: %.3f s "
              "(measured in the traced run: %.3f s)\n",
              estimate.totalTimeSec, [&] {
                double t = 0;
                for (const auto& ph : clean.phases()) {
                  t += ph.measuredIoTime();
                }
                return t;
              }());
  std::printf("\nPaper reference (Section V): \"still is necessary refine "
              "the methodology to I/O phases with access patterns complex, "
              "and to the I/O library HDF5\" — the filter is that "
              "refinement for metadata noise.\n");
  return 0;
}
