// Micro-benchmarks (google-benchmark) of the model-extraction pipeline:
// LAP extraction, cycle segmentation (DP and greedy), phase detection, and
// offset-function fitting on synthetic traces of growing size.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/iomodel.hpp"
#include "sim/engine.hpp"
#include "core/lap.hpp"
#include "core/phase.hpp"
#include "trace/tracefile.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace iop;

std::vector<trace::Record> syntheticRun(int rank, int ops, bool interleaved) {
  std::vector<trace::Record> records;
  std::uint64_t tick = 1;
  for (int i = 0; i < ops; ++i) {
    trace::Record r;
    r.rank = rank;
    r.fileId = 1;
    const bool write = !interleaved || i % 2 == 0;
    r.op = write ? "MPI_File_write" : "MPI_File_read";
    r.offsetUnits = static_cast<std::uint64_t>(i / (interleaved ? 2 : 1)) *
                    1048576;
    r.tick = tick++;
    r.requestBytes = 1048576;
    r.time = 0.01 * i;
    r.duration = 0.005;
    records.push_back(std::move(r));
  }
  return records;
}

trace::TraceData syntheticTrace(int np, int opsPerRank) {
  trace::TraceData data;
  data.appName = "synthetic";
  data.np = np;
  trace::FileMeta meta;
  meta.fileId = 1;
  meta.path = "/scratch/synthetic.dat";
  meta.np = np;
  data.files.push_back(meta);
  for (int r = 0; r < np; ++r) {
    data.perRank.push_back(syntheticRun(r, opsPerRank, false));
  }
  data.commEventsPerRank.assign(static_cast<std::size_t>(np), 0);
  return data;
}

void BM_LapExtraction(benchmark::State& state) {
  auto records = syntheticRun(0, static_cast<int>(state.range(0)), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extractLaps(records));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LapExtraction)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SegmentationDp(benchmark::State& state) {
  auto records = syntheticRun(0, static_cast<int>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::segmentRecords(records));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SegmentationDp)->Arg(64)->Arg(256)->Arg(1024);

void BM_SegmentationGreedy(benchmark::State& state) {
  auto records = syntheticRun(0, static_cast<int>(state.range(0)), true);
  core::SegmentOptions opt;
  opt.dpLimit = 1;  // force greedy
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::segmentRecords(records, opt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SegmentationGreedy)->Arg(1024)->Arg(16384);

void BM_PhaseDetection(benchmark::State& state) {
  auto data = syntheticTrace(static_cast<int>(state.range(0)), 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::detectPhases(data));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 200);
}
BENCHMARK(BM_PhaseDetection)->Arg(4)->Arg(16)->Arg(64);

void BM_OffsetFit(benchmark::State& state) {
  const int np = static_cast<int>(state.range(0));
  std::vector<int> ranks;
  std::vector<std::uint64_t> offsets;
  for (int r = 0; r < np; ++r) {
    ranks.push_back(r);
    offsets.push_back(static_cast<std::uint64_t>(r) * 8 * 33554432);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fitRankOffsets(ranks, offsets));
  }
}
BENCHMARK(BM_OffsetFit)->Arg(16)->Arg(121)->Arg(1024);

void BM_ModelExtraction(benchmark::State& state) {
  auto data = syntheticTrace(16, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extractModel(data));
  }
}
BENCHMARK(BM_ModelExtraction)->Arg(100)->Arg(400);

void BM_EngineEventThroughput(benchmark::State& state) {
  // Raw event dispatch rate of the simulation engine: the figure that
  // bounds how much simulated I/O a second of wall time buys.
  for (auto _ : state) {
    iop::sim::Engine eng;
    const int chains = static_cast<int>(state.range(0));
    for (int c = 0; c < chains; ++c) {
      eng.spawn([](iop::sim::Engine& e) -> iop::sim::Task<void> {
        for (int i = 0; i < 1000; ++i) co_await e.delay(0.001);
      }(eng));
    }
    eng.run();
    benchmark::DoNotOptimize(eng.eventsDispatched());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 1000);
}
BENCHMARK(BM_EngineEventThroughput)->Arg(1)->Arg(16)->Arg(128)->Arg(1024);

void BM_EngineSpawnChurn(benchmark::State& state) {
  // Short-lived processes spawned in waves: dominated by coroutine-frame
  // allocation and queue insertion rather than steady-state dispatch.
  for (auto _ : state) {
    iop::sim::Engine eng;
    const int waves = static_cast<int>(state.range(0));
    for (int w = 0; w < waves; ++w) {
      for (int i = 0; i < 64; ++i) {
        eng.spawnAt(0.001 * w,
                    [](iop::sim::Engine& e) -> iop::sim::Task<void> {
                      co_await e.delay(0.0005);
                    }(eng));
      }
    }
    eng.run();
    benchmark::DoNotOptimize(eng.eventsDispatched());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 64);
}
BENCHMARK(BM_EngineSpawnChurn)->Arg(16)->Arg(256);

void BM_EngineMixedDelays(benchmark::State& state) {
  // Rng-driven delays across two timescales: exercises the scheduler's
  // far-future spillover and window turnover, not just the uniform-gap
  // fast path.
  for (auto _ : state) {
    iop::sim::Engine eng(7);
    const int chains = static_cast<int>(state.range(0));
    for (int c = 0; c < chains; ++c) {
      eng.spawn([](iop::sim::Engine& e, int salt) -> iop::sim::Task<void> {
        const double scale = salt % 4 == 0 ? 1.0 : 0.01;
        for (int i = 0; i < 500; ++i) {
          co_await e.delay(e.rng().uniform() * scale);
        }
      }(eng, c));
    }
    eng.run();
    benchmark::DoNotOptimize(eng.eventsDispatched());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 500);
}
BENCHMARK(BM_EngineMixedDelays)->Arg(64);

void BM_TraceParse(benchmark::State& state) {
  // Trace read-back rate (records/s): the front half of every
  // characterization.
  const int np = 4;
  const int ops = static_cast<int>(state.range(0));
  const auto dir =
      std::filesystem::temp_directory_path() / "iop_core_bench_traces";
  trace::writeTraces(dir, syntheticTrace(np, ops));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::readTraces(dir, "synthetic"));
  }
  state.SetItemsProcessed(state.iterations() * np * ops);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_TraceParse)->Arg(1000)->Arg(10000);

// Console output as usual, plus every per-iteration run collected into the
// machine-readable BENCH_core.json (schema: docs/OBSERVABILITY.md) so the
// perf trajectory accumulates across commits.
class JsonCollector : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      iop::bench::BenchRecord rec;
      rec.name = run.benchmark_name();
      rec.iterations = run.iterations;
      if (run.iterations > 0) {
        rec.nsPerOp =
            run.real_accumulated_time / static_cast<double>(run.iterations) *
            1e9;
      }
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) rec.bytesPerSecond = it->second;
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<iop::bench::BenchRecord>& records() const {
    return records_;
  }

 private:
  std::vector<iop::bench::BenchRecord> records_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonOut = "BENCH_core.json";
  std::string engineJsonOut = "BENCH_engine.json";
  // Peel off our own flags before google-benchmark sees the argument list.
  for (int i = 1; i < argc;) {
    const std::string arg = argv[i];
    std::string* target = nullptr;
    std::size_t prefix = 0;
    if (arg.rfind("--json-out=", 0) == 0) {
      target = &jsonOut;
      prefix = 11;
    } else if (arg.rfind("--engine-json-out=", 0) == 0) {
      target = &engineJsonOut;
      prefix = 18;
    }
    if (target == nullptr) {
      ++i;
      continue;
    }
    *target = arg.substr(prefix);
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCollector reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  iop::bench::writeBenchJson(jsonOut, reporter.records());
  std::printf("wrote %zu benchmark results to %s\n",
              reporter.records().size(), jsonOut.c_str());
  // The engine-hot-path subset gets its own document: CI gates on it
  // against the committed baseline (docs/PERFORMANCE.md).
  std::vector<iop::bench::BenchRecord> engineRecords;
  for (const auto& rec : reporter.records()) {
    if (rec.name.rfind("BM_Engine", 0) == 0 ||
        rec.name.rfind("BM_Trace", 0) == 0) {
      engineRecords.push_back(rec);
    }
  }
  if (!engineRecords.empty()) {
    iop::bench::writeBenchJson(engineJsonOut, engineRecords);
    std::printf("wrote %zu engine benchmark results to %s\n",
                engineRecords.size(), engineJsonOut.c_str());
  }
  benchmark::Shutdown();
  return 0;
}
