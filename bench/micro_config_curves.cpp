// Raw bandwidth curves of the four configurations: IOR sweeps over request
// size and process count, the data behind all higher-level comparisons
// (who wins where, and why Finisterrae's reads cross over NFS's).
#include <cstdio>

#include "common.hpp"
#include "ior/ior.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;
  using iop::util::MiB;
  bench::banner("Configuration curves",
                "IOR bandwidth vs request size and np, all configurations");

  const configs::ConfigId ids[] = {
      configs::ConfigId::A, configs::ConfigId::B, configs::ConfigId::C,
      configs::ConfigId::Finisterrae};

  util::Table table("IOR, 256 MB per process, collective, shared file");
  table.setHeader({"configuration", "np", "transfer", "write MB/s",
                   "read MB/s"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right});
  std::vector<bench::BenchRecord> records;
  for (auto id : ids) {
    for (int np : {4, 16}) {
      for (std::uint64_t t : {1 * MiB, 16 * MiB}) {
        auto cfg = configs::makeConfig(id);
        ior::IorParams p;
        p.mount = cfg.mount;
        p.np = np;
        p.blockSize = 256 * MiB;
        p.transferSize = t;
        p.collective = true;
        auto r = ior::runIor(cfg, p);
        table.addRow({configs::configName(id), std::to_string(np),
                      util::formatBytes(t),
                      bench::fmtMiBs(r.writeBandwidth),
                      bench::fmtMiBs(r.readBandwidth)});
        const std::string stem = std::string("ior/") +
                                 configs::configName(id) + "/np" +
                                 std::to_string(np) + "/t" +
                                 util::formatBytes(t);
        for (const auto& [dir, bw] :
             {std::pair<const char*, double>{"write", r.writeBandwidth},
              {"read", r.readBandwidth}}) {
          bench::BenchRecord rec;
          rec.name = stem + "/" + dir;
          rec.iterations = 1;
          rec.bytesPerSecond = bw;
          records.push_back(std::move(rec));
        }
      }
    }
    table.addSeparator();
  }
  std::printf("%s\n", table.render().c_str());
  bench::writeBenchJson("BENCH_curves.json", records);
  std::printf("wrote %zu bandwidth results to BENCH_curves.json\n",
              records.size());
  std::printf("Expected shape: A and C saturate one GbE link (~100-117 "
              "MB/s writes, slower latency-bound reads); B is bound by its "
              "three old JBOD disks;\nFinisterrae sustains higher rates "
              "and, unlike NFS, reads are not slower than writes.\n");
  return 0;
}
