// Figure 9: the I/O model of NAS BT-IO, class C, 16 processes, subtype
// FULL, extracted on configurations A and B — the paper obtains the *same*
// model on both (subsystem independence).
#include <cstdio>

#include "common.hpp"
#include "core/compare.hpp"

int main() {
  using namespace iop;
  bench::banner("Figure 9",
                "I/O model of NAS BT-IO class C, 16 procs, conf. A and B");

  auto makeApp = [](const configs::ClusterConfig& cfg) {
    return apps::makeBtio(bench::paperBtio(cfg.mount, apps::BtClass::C));
  };
  auto onA = bench::traceOn(configs::ConfigId::A, "btio-C", makeApp, 16);
  auto onB = bench::traceOn(configs::ConfigId::B, "btio-C", makeApp, 16);

  std::printf("model on configuration A:\n%s\n",
              onA.model.renderSummary().c_str());

  // Subsystem independence: phase structure identical on A and B.
  const bool identical =
      static_cast<bool>(core::compareModels(onA.model, onB.model));
  std::printf("phase structure identical on A and B: %s "
              "(paper: \"we had obtained the same I/O model in the four "
              "configurations\")\n",
              identical ? "YES" : "NO");
  std::printf("phases: %zu (paper: 40 write phases + 1 read phase, "
              "request size ~10MB)\n",
              onA.model.phases().size());
  return 0;
}
