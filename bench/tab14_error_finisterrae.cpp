// Table XIV: relative error of the I/O-time estimation on Finisterrae for
// NAS BT-IO class D with 64 processes.
//
// Paper: Phase 1-50 932.36/924.85 (1%); Phase 51 844.42/909.43 (7%).
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/replay.hpp"
#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace iop;
  bench::banner("Table XIV",
                "Estimation error on Finisterrae, BT-IO class D, 64 procs");

  auto charRun = bench::traceOn(
      configs::ConfigId::A, "btio-D",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeBtio(bench::paperBtio(cfg.mount, apps::BtClass::D));
      },
      64);
  analysis::Replayer replayer(
      [] { return configs::makeConfig(configs::ConfigId::Finisterrae); },
      "homesfs");
  auto estimate = analysis::estimateIoTime(charRun.model, replayer);
  auto measured = bench::traceOn(
      configs::ConfigId::Finisterrae, "btio-D",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeBtio(bench::paperBtio(cfg.mount, apps::BtClass::D));
      },
      64);
  auto rows = analysis::compareEstimate(estimate, measured.model);

  util::Table table(
      "Paper reference: 932.36/924.85 (1%) and 844.42/909.43 (7%)");
  table.setHeader({"Phase", "Time_CH (s)", "Time_MD (s)", "error_rel"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right});
  double worst = 0;
  for (const auto& row : rows) {
    table.addRow({row.label(), bench::fmtSec(row.timeCH),
                  bench::fmtSec(row.timeMD), bench::fmtPct(row.errorPct)});
    worst = std::max(worst, row.errorPct);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("worst relative error: %.1f%% (paper: <=7%%)\n", worst);
  return 0;
}
