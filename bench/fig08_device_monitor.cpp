// Figure 8: iostat-style device monitoring (sectors/s and %util per disk,
// 1-second samples) while MADbench2 runs on configuration B.  The paper's
// point: the I/O phases identified at library level are visible at device
// level, and the JBOD disks saturate (~100% util) even though the
// application only reaches ~30% of the ideal BW_PK.
#include <algorithm>
#include <cstdio>

#include "common.hpp"
#include "monitor/monitor.hpp"
#include "mpi/runtime.hpp"

int main() {
  using namespace iop;
  bench::banner("Figure 8",
                "Device activity during MADbench2 on configuration B");

  auto cfg = configs::makeConfig(configs::ConfigId::B);
  auto params = bench::paperMadbench(cfg.mount);
  monitor::DeviceMonitor mon(*cfg.engine, cfg.topology->allDisks(), 1.0);
  mon.start();

  auto opts = cfg.runtimeOptions(16);
  opts.onAppComplete = [&mon] { mon.stop(); };
  mpi::Runtime runtime(*cfg.topology, opts);
  const double makespan =
      runtime.runToCompletion(apps::makeMadbench(params));

  std::printf("application makespan: %s s; %zu samples on %zu disks\n\n",
              bench::fmtSec(makespan).c_str(), mon.samples().size(),
              mon.disks().size());

  // Figure-8-style time series, downsampled: for disk 0, one bar per ~2%
  // of the run.
  const auto& samples = mon.samples();
  const std::size_t step = std::max<std::size_t>(1, samples.size() / 48);
  double peakRate = 1;
  for (const auto& s : samples) {
    peakRate = std::max(peakRate, s.disks[0].sectorsReadPerSec +
                                      s.disks[0].sectorsWrittenPerSec);
  }
  std::printf("disk nasd-disk0: sectors/s over time (W=write-dominated,\n"
              "R=read-dominated, .=idle), and %%util:\n");
  for (std::size_t i = 0; i < samples.size(); i += step) {
    const auto& d = samples[i].disks[0];
    const double rate = d.sectorsReadPerSec + d.sectorsWrittenPerSec;
    const int bars = static_cast<int>(40.0 * rate / peakRate);
    char kind = '.';
    if (rate > 0) {
      kind = d.sectorsWrittenPerSec >= d.sectorsReadPerSec ? 'W' : 'R';
    }
    std::printf("t=%6.0fs |", samples[i].time);
    for (int b = 0; b < bars; ++b) std::printf("%c", kind);
    std::printf("%*s| %5.1f%%\n", 40 - bars, "", d.utilization * 100);
  }
  std::printf("\npeak disk utilization across the run: %.0f%% "
              "(paper: \"uses about the 100%%\" at device level)\n",
              mon.peakUtilization() * 100);
  std::printf("\nfull CSV sample (first 5 lines):\n");
  auto csv = mon.renderCsv();
  std::size_t pos = 0;
  for (int line = 0; line < 5 && pos != std::string::npos; ++line) {
    auto next = csv.find('\n', pos);
    std::printf("%s\n", csv.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
