// What-if study built on the paper's methodology: "would an SSD NAS fix
// our read problem?"  The application's model is extracted once on the
// existing configuration A; candidate storage designs are then evaluated
// purely by phase replay — including a hypothetical variant of A whose
// RAID5 is swapped for an NVMe-class SSD.
#include <cstdio>

#include "analysis/replay.hpp"
#include "common.hpp"
#include "storage/filesystem.hpp"
#include "storage/ssd.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace iop;
using iop::util::GiB;

/// Configuration A with the NAS's RAID5 replaced by one SSD.
configs::ClusterConfig makeSsdVariant() {
  configs::ClusterConfig cfg;
  cfg.name = "Configuration A + SSD NAS";
  cfg.engine = std::make_unique<sim::Engine>(1);
  cfg.topology = std::make_unique<storage::Topology>(*cfg.engine);
  for (int i = 0; i < 8; ++i) {
    cfg.topology->addNode("aoh" + std::to_string(i),
                          storage::gigabitEthernet());
    cfg.computeNodes.push_back(static_cast<std::size_t>(i));
  }
  auto& nas = cfg.topology->addNode("nas", storage::gigabitEthernet());
  storage::ServerParams sp;
  sp.cache.sizeBytes = 1536ull << 20;
  storage::SsdParams ssd;
  ssd.name = "nas-nvme";
  auto& server = cfg.topology->addServer(
      nas, std::make_unique<storage::Ssd>(*cfg.engine, ssd), sp);
  storage::NfsParams nfs;
  nfs.rpcSize = 256ull << 10;
  cfg.topology->mount("/raid/raid5", std::make_unique<storage::NfsFS>(
                                         *cfg.engine, server, nfs));
  cfg.mount = "/raid/raid5";
  cfg.hints.cbNodes = 1;
  return cfg;
}

}  // namespace

int main() {
  bench::banner("What-if: SSD NAS",
                "Phase replay of BT-IO and MADbench2 on configuration A "
                "vs an SSD variant");

  struct Workload {
    const char* name;
    analysis::AppRun run;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"BT-IO class C, 16p",
       bench::traceOn(configs::ConfigId::A, "btio",
                      [](const configs::ClusterConfig& cfg) {
                        return apps::makeBtio(
                            bench::paperBtio(cfg.mount, apps::BtClass::C));
                      },
                      16)});
  workloads.push_back(
      {"MADbench2 16p 8KPIX",
       bench::traceOn(configs::ConfigId::A, "madbench2",
                      [](const configs::ClusterConfig& cfg) {
                        return apps::makeMadbench(
                            bench::paperMadbench(cfg.mount));
                      },
                      16)});

  util::Table table("estimated Time_io (s) from the same models");
  table.setHeader({"workload", "RAID5 NAS (today)", "SSD NAS (what-if)",
                   "speedup"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right});
  for (auto& w : workloads) {
    analysis::Replayer onRaid(
        [] { return configs::makeConfig(configs::ConfigId::A); },
        "/raid/raid5");
    analysis::Replayer onSsd(makeSsdVariant, "/raid/raid5");
    auto raid = analysis::estimateIoTime(w.run.model, onRaid);
    auto ssd = analysis::estimateIoTime(w.run.model, onSsd);
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  raid.totalTimeSec / ssd.totalTimeSec);
    table.addRow({w.name, bench::fmtSec(raid.totalTimeSec),
                  bench::fmtSec(ssd.totalTimeSec), speedup});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected: modest gains only — both workloads are bound by "
              "the single GbE link into the NAS, so faster storage mostly "
              "helps the latency-bound read phases.  The methodology makes "
              "that visible *before* buying the hardware.\n");
  return 0;
}
