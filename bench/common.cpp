#include "common.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/recorder.hpp"
#include "util/units.hpp"

namespace iop::bench {

void banner(const std::string& experimentId, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experimentId.c_str(), title.c_str());
  std::printf("================================================================\n");
}

apps::MadbenchParams paperMadbench(const std::string& mount) {
  apps::MadbenchParams p;
  p.mount = mount;
  p.kpix = 8;
  p.bins = 8;
  p.busyWorkSeconds = 0.5;
  return p;
}

apps::BtioParams paperBtio(const std::string& mount, apps::BtClass cls) {
  apps::BtioParams p;
  p.mount = mount;
  p.cls = cls;
  return p;
}

apps::StridedExampleParams paperExample(const std::string& mount) {
  apps::StridedExampleParams p;
  p.mount = mount;
  return p;
}

analysis::AppRun traceOn(configs::ConfigId id, const std::string& appName,
                         const std::function<mpi::Runtime::RankMain(
                             const configs::ClusterConfig&)>& makeMain,
                         int np) {
  auto cfg = configs::makeConfig(id);
  return analysis::runAndTrace(cfg, appName, makeMain(cfg), np);
}

std::string fmtSec(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f", seconds);
  return buf;
}

std::string fmtMiBs(double bytesPerSecond) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.0f", util::toMiBs(bytesPerSecond));
  return buf;
}

std::string fmtPct(double pct) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.0f%%", pct);
  return buf;
}

void writeBenchJson(const std::string& path,
                    const std::vector<BenchRecord>& records) {
  std::ostringstream out;
  out << "{\"schema\":\"iop-bench/1\",\"results\":[";
  bool first = true;
  for (const auto& r : records) {
    if (!first) out << ",";
    first = false;
    char nums[96];
    std::snprintf(nums, sizeof nums,
                  "\"iterations\":%lld,\"ns_per_op\":%.6g,"
                  "\"bytes_per_second\":%.6g",
                  static_cast<long long>(r.iterations), r.nsPerOp,
                  r.bytesPerSecond);
    out << "\n  {\"name\":\"" << obs::TraceRecorder::jsonEscape(r.name)
        << "\"," << nums << "}";
  }
  out << "\n]}\n";
  std::ofstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot write " + path);
  file << out.str();
}

}  // namespace iop::bench
