// Table XII: configuration selection — Time_io(CH) of NAS BT-IO class D,
// 64 processes, estimated (via IOR phase replay only, eqs. 1-2) on
// configuration C and on Finisterrae.  The configuration with less I/O
// time is selected.
//
// Paper (seconds): conf. C 1167.40 / 2868.51; Finisterrae 932.36 / 844.42
// -> Finisterrae selected.
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/replay.hpp"
#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace iop;
  bench::banner("Table XII",
                "Time_io(CH) of BT-IO class D, 64 procs: conf. C vs "
                "Finisterrae");

  // Characterize once on configuration A (a third machine).
  auto charRun = bench::traceOn(
      configs::ConfigId::A, "btio-D",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeBtio(bench::paperBtio(cfg.mount, apps::BtClass::D));
      },
      64);

  std::vector<analysis::SelectionCandidate> candidates;
  {
    analysis::Replayer onC(
        [] { return configs::makeConfig(configs::ConfigId::C); }, "/home");
    candidates.push_back(
        {"Configuration C", analysis::estimateIoTime(charRun.model, onC)});
  }
  {
    analysis::Replayer onF(
        [] { return configs::makeConfig(configs::ConfigId::Finisterrae); },
        "homesfs");
    candidates.push_back(
        {"Finisterrae", analysis::estimateIoTime(charRun.model, onF)});
  }

  util::Table table("Time_io(CH), 64 processes (paper: C 1167.40/2868.51, "
                    "Finisterrae 932.36/844.42)");
  table.setHeader({"Phase", "on conf. C (s)", "on Finisterrae (s)"},
                  {util::Align::Left, util::Align::Right,
                   util::Align::Right});
  auto rowsC = candidates[0].estimate.familyRows();
  auto rowsF = candidates[1].estimate.familyRows();
  for (std::size_t i = 0; i < rowsC.size(); ++i) {
    std::string label =
        rowsC[i].firstPhase == rowsC[i].lastPhase
            ? "Phase " + std::to_string(rowsC[i].firstPhase)
            : "Phase " + std::to_string(rowsC[i].firstPhase) + "-" +
                  std::to_string(rowsC[i].lastPhase);
    table.addRow({label, bench::fmtSec(rowsC[i].timeCH),
                  bench::fmtSec(rowsF[i].timeCH)});
  }
  table.addSeparator();
  table.addRow({"total", bench::fmtSec(candidates[0].estimate.totalTimeSec),
                bench::fmtSec(candidates[1].estimate.totalTimeSec)});
  std::printf("%s\n", table.render().c_str());

  const auto* best = analysis::selectConfiguration(candidates);
  std::printf("selected configuration: %s (paper: Finisterrae)\n",
              best->name.c_str());
  return 0;
}
