// Emit gnuplot-ready data + scripts for the paper's model figures
// (Figs. 5, 7, 9, 10 — the 3-D global access patterns) and the Fig. 8
// device time series, into ./plots/.
//
//   for f in plots/*.gp; do gnuplot "$f"; done   # renders .png files
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "apps/madbench.hpp"
#include "common.hpp"
#include "monitor/monitor.hpp"
#include "mpi/runtime.hpp"

namespace {

using namespace iop;

void writeFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

void emitModelSeries(const std::filesystem::path& dir,
                     const std::string& stem, const core::IOModel& model,
                     const std::string& title) {
  writeFile(dir / (stem + ".dat"), model.renderGlobalPatternSeries());
  std::string gp =
      "set terminal png size 900,600\n"
      "set output '" + stem + ".png'\n"
      "set title '" + title + "'\n"
      "set xlabel 'tick'\nset ylabel 'process'\nset zlabel 'file offset'\n"
      "set ticslevel 0\n"
      "splot '" + stem + ".dat' using 3:2:(strcol(6) eq 'W' ? $4 : 1/0) "
      "with points pt 7 lc rgb 'red' title 'writes', \\\n"
      "      '" + stem + ".dat' using 3:2:(strcol(6) eq 'R' ? $4 : 1/0) "
      "with points pt 7 lc rgb 'blue' title 'reads'\n";
  writeFile(dir / (stem + ".gp"), gp);
  std::printf("  %s.dat / %s.gp — %s\n", stem.c_str(), stem.c_str(),
              title.c_str());
}

}  // namespace

int main() {
  bench::banner("Plot data", "gnuplot inputs for Figures 5, 7, 8, 9, 10");
  const std::filesystem::path dir = "plots";
  std::filesystem::create_directories(dir);

  emitModelSeries(
      dir, "fig05_example",
      bench::traceOn(configs::ConfigId::A, "example",
                     [](const configs::ClusterConfig& cfg) {
                       return apps::makeStridedExample(
                           bench::paperExample(cfg.mount));
                     },
                     4)
          .model,
      "Figure 5: I/O model of the example application (4 processes)");

  emitModelSeries(
      dir, "fig07_madbench",
      bench::traceOn(configs::ConfigId::A, "madbench2",
                     [](const configs::ClusterConfig& cfg) {
                       return apps::makeMadbench(
                           bench::paperMadbench(cfg.mount));
                     },
                     16)
          .model,
      "Figure 7: I/O model of MADbench2 (16 processes, 8KPIX, SHARED)");

  emitModelSeries(
      dir, "fig09_btio_c",
      bench::traceOn(configs::ConfigId::A, "btio-C",
                     [](const configs::ClusterConfig& cfg) {
                       return apps::makeBtio(
                           bench::paperBtio(cfg.mount, apps::BtClass::C));
                     },
                     16)
          .model,
      "Figure 9: I/O model of NAS BT-IO class C (16 processes)");

  emitModelSeries(
      dir, "fig10_btio_d",
      bench::traceOn(configs::ConfigId::C, "btio-D",
                     [](const configs::ClusterConfig& cfg) {
                       return apps::makeBtio(
                           bench::paperBtio(cfg.mount, apps::BtClass::D));
                     },
                     36)
          .model,
      "Figure 10: I/O model of NAS BT-IO class D (36 processes)");

  // Figure 8: device time series CSV during MADbench2 on configuration B.
  {
    auto cfg = configs::makeConfig(configs::ConfigId::B);
    auto params = bench::paperMadbench(cfg.mount);
    monitor::DeviceMonitor mon(*cfg.engine, cfg.topology->allDisks(), 1.0);
    mon.start();
    auto opts = cfg.runtimeOptions(16);
    opts.onAppComplete = [&mon] { mon.stop(); };
    mpi::Runtime runtime(*cfg.topology, opts);
    runtime.runToCompletion(apps::makeMadbench(params));
    writeFile(dir / "fig08_devices.csv", mon.renderCsv());
    writeFile(dir / "fig08_devices.gp",
              "set terminal png size 900,400\n"
              "set output 'fig08_devices.png'\n"
              "set datafile separator ','\n"
              "set title 'Figure 8: disk sectors/s during MADbench2 on "
              "configuration B'\n"
              "set xlabel 'time (s)'\nset ylabel 'sectors/s'\n"
              "plot 'fig08_devices.csv' every 3::1 using 1:3 with lines "
              "title 'read', \\\n"
              "     'fig08_devices.csv' every 3::1 using 1:4 with lines "
              "title 'write'\n");
    std::printf("  fig08_devices.csv / fig08_devices.gp — device series\n");
  }
  std::printf("\nwrote plots/ — render with: "
              "cd plots && for f in *.gp; do gnuplot $f; done\n");
  return 0;
}
