// Tenant co-scheduling micro-benchmark: how fast runTenant() turns a
// spec into a contention report, from the trivial solo fast path to a
// contended 3-tenant run with burst-buffer staging.
//
// Jobs reference a pre-saved model file so the timed region measures the
// co-scheduler (arrival draws, shared-engine replay, WFQ arbitration,
// conflict analysis, solo baselines), not app characterization.  Emits
// BENCH_tenant.json (iop-bench/1) for iop-diff --bench.
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "common.hpp"
#include "tenant/cosched.hpp"
#include "tenant/spec.hpp"
#include "util/table.hpp"

namespace {

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  using namespace iop;
  bench::banner("Tenant co-scheduling throughput",
                "runTenant runs/second: solo fast path, 3-way contention, "
                "burst-buffer staging");

  // One characterization, reused by every job via a saved model file.
  const auto run = bench::traceOn(
      configs::ConfigId::A, "example",
      [](const configs::ClusterConfig& cluster) {
        return apps::makeStridedExample(bench::paperExample(cluster.mount));
      },
      4);
  const auto root =
      std::filesystem::temp_directory_path() / "iop_micro_tenant_bench";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  const auto modelPath = (root / "example.model").string();
  run.model.save(modelPath);

  const analysis::ConfigBuilder builder = [] {
    return configs::makeConfig(configs::ConfigId::B);
  };

  struct Case {
    const char* name;
    std::string specText;
  };
  const Case cases[] = {
      {"tenant/solo1",
       "job a model=" + modelPath + " arrival=0s\n"},
      {"tenant/contended3",
       "job a model=" + modelPath + " weight=2 arrival=0s\n"
       "job b model=" + modelPath + " arrival=0s\n"
       "job c model=" + modelPath +
           " weight=0.5 arrival=poisson:rate=2,count=2\n"},
      {"tenant/contended3/bb",
       "job a model=" + modelPath + " weight=2 arrival=0s\n"
       "job b model=" + modelPath + " arrival=0s burst-buffer=on\n"
       "job c model=" + modelPath +
           " weight=0.5 arrival=periodic:start=0s,every=5s,count=2\n"},
  };
  constexpr int kRounds = 10;

  util::Table table("example-app tenants on config B, 10 rounds");
  table.setHeader({"case", "jobs", "rounds", "ms/run", "runs/s"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right});
  std::vector<bench::BenchRecord> records;
  for (const auto& c : cases) {
    const auto spec = tenant::parseTenantSpec(c.specText, c.name);
    double totalSeconds = 0;
    for (int round = 0; round < kRounds; ++round) {
      const auto start = std::chrono::steady_clock::now();
      const auto result =
          tenant::runTenant(spec, builder, 1 + round);
      totalSeconds += secondsSince(start);
      if (result.jobs.size() != spec.jobs.size() || result.makespan <= 0) {
        std::fprintf(stderr, "unexpected outcome for %s\n", c.name);
        return 1;
      }
    }
    const double perRun = totalSeconds / kRounds;
    char ms[32], rps[32];
    std::snprintf(ms, sizeof ms, "%.2f", perRun * 1e3);
    std::snprintf(rps, sizeof rps, "%.0f", perRun > 0 ? 1.0 / perRun : 0);
    table.addRow({c.name, std::to_string(spec.jobs.size()),
                  std::to_string(kRounds), ms, rps});

    bench::BenchRecord rec;
    rec.name = c.name;
    rec.iterations = kRounds;
    rec.nsPerOp = perRun * 1e9;
    records.push_back(std::move(rec));
  }
  std::filesystem::remove_all(root);

  std::printf("%s\n", table.render().c_str());
  bench::writeBenchJson("BENCH_tenant.json", records);
  std::printf("wrote %zu results to BENCH_tenant.json\n", records.size());
  std::printf("Expected shape: the solo fast path is the cheapest; the "
              "contended cases add one shared-engine replay plus a solo "
              "baseline per distinct job, so roughly 4-7x solo1.\n");
  return 0;
}
