// Fidelity ladder: how much accuracy does the phase abstraction give up?
//
// Three ways to predict an application's I/O time on a target it has
// never run on, in increasing cost and fidelity:
//   1. IOR phase replay of the abstract model   (the paper's method)
//   2. full trace-driven replay                 (this repo's extension)
//   3. running the application there            (ground truth)
// All three are compared per phase group on a device-bound target
// (configuration B), where replay fidelity matters most.
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/replay.hpp"
#include "analysis/trace_replay.hpp"
#include "common.hpp"
#include "util/table.hpp"

int main() {
  using namespace iop;
  bench::banner("Fidelity ladder",
                "IOR phase replay vs trace replay vs the application "
                "(BT-IO class C, 16 procs, target = configuration B)");

  auto makeApp = [](const configs::ClusterConfig& cfg) {
    return apps::makeBtio(bench::paperBtio(cfg.mount, apps::BtClass::C));
  };
  auto builder = [] { return configs::makeConfig(configs::ConfigId::B); };

  // Characterize on configuration A.
  auto charRun = bench::traceOn(configs::ConfigId::A, "btio-C", makeApp, 16);

  // Rung 1: the paper's abstract-model estimate.
  analysis::Replayer replayer(builder, "/mnt/pvfs2");
  auto estimate = analysis::estimateIoTime(charRun.model, replayer);

  // Rung 2: trace-driven replay.
  auto traceReplay =
      analysis::replayTrace(charRun.trace, builder, "/mnt/pvfs2");

  // Rung 3: ground truth — the application on B.
  auto truth = bench::traceOn(configs::ConfigId::B, "btio-C", makeApp, 16);

  auto iorRows = analysis::compareEstimate(estimate, truth.model);
  util::Table table("Time_io per phase group (seconds)");
  table.setHeader({"Phase", "app on B (truth)", "trace replay", "err",
                   "IOR estimate", "err"},
                  {util::Align::Left, util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right,
                   util::Align::Right});
  const auto& truthPhases = truth.model.phases();
  const auto& replayPhases = traceReplay.measuredModel.phases();
  // Group replay times like compareEstimate groups the truth.
  std::size_t idx = 0;
  for (const auto& row : iorRows) {
    double replaySec = 0;
    double truthSec = 0;
    for (int id = row.firstPhase; id <= row.lastPhase; ++id, ++idx) {
      replaySec += replayPhases[idx].measuredIoTime();
      truthSec += truthPhases[idx].measuredIoTime();
    }
    table.addRow(
        {row.label(), bench::fmtSec(truthSec), bench::fmtSec(replaySec),
         bench::fmtPct(analysis::relativeErrorPct(replaySec, truthSec)),
         bench::fmtSec(row.timeCH), bench::fmtPct(row.errorPct)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected: trace replay tracks the truth more tightly than "
              "the IOR estimate (it reproduces the exact request layout); "
              "the abstract model stays within the paper's error band at a "
              "fraction of the replay cost (%zu IOR runs vs a full trace "
              "execution).\n",
              replayer.benchmarkRuns());
  return 0;
}
