// Figure 2: the per-process trace files of the example application.
//
// Paper: 4 processes, MPI_File_write_at_all, request size 10 612 080 B,
// view offsets 0, 265302, 530604, 795906 at ticks ~148, 269, 390, 511.
#include <cstdio>

#include "common.hpp"
#include "trace/tracefile.hpp"

int main() {
  using namespace iop;
  bench::banner("Figure 2", "TraceFile of the example application");

  auto run = bench::traceOn(
      configs::ConfigId::A, "example",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeStridedExample(bench::paperExample(cfg.mount));
      },
      4);

  for (int rank = 0; rank < 2; ++rank) {
    std::printf("%s\n",
                trace::renderTraceTable(run.trace, rank, 4).c_str());
  }
  std::printf(
      "Paper reference (process 0): offsets 0, 265302, 530604, 795906 "
      "(etype units), request size 10612080, ticks 148/269/390/511\n");
  std::printf(
      "Reproduced: same offsets and request size; ticks differ by the\n"
      "modeled amount of solver communication between dumps.\n");
  return 0;
}
