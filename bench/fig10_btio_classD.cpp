// Figure 10: the I/O model of NAS BT-IO class D, 36 processes, subtype
// FULL, on configuration C and Finisterrae — same model on both.
#include <cstdio>

#include "common.hpp"
#include "core/compare.hpp"

int main() {
  using namespace iop;
  bench::banner("Figure 10",
                "I/O model of NAS BT-IO class D, 36 procs, conf. C and "
                "Finisterrae");

  auto makeApp = [](const configs::ClusterConfig& cfg) {
    return apps::makeBtio(bench::paperBtio(cfg.mount, apps::BtClass::D));
  };
  auto onC = bench::traceOn(configs::ConfigId::C, "btio-D", makeApp, 36);
  auto onF =
      bench::traceOn(configs::ConfigId::Finisterrae, "btio-D", makeApp, 36);

  std::printf("model on configuration C (phases %zu):\n",
              onC.model.phases().size());
  // Print an abbreviated phase table: first two write phases + read phase.
  const auto& phases = onC.model.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 1 && i + 1 < phases.size()) continue;
    const auto& p = phases[i];
    std::printf("  phase %2d: %s rep=%llu weight=%.2f GB f(initOffset) = %s\n",
                p.id, p.opTypeLabel().c_str(),
                static_cast<unsigned long long>(p.rep),
                static_cast<double>(p.weightBytes) / (1u << 30),
                p.ops[0].offsetFn.render(p.ops[0].rsBytes, p.np()).c_str());
    if (i == 1) std::printf("  ... (phases 3-50 identical, ph advancing)\n");
  }

  const bool identical =
      static_cast<bool>(core::compareModels(onC.model, onF.model));
  std::printf("\nphase structure identical on C and Finisterrae: %s\n",
              identical ? "YES" : "NO");
  std::printf("Paper reference: 50 write phases + 1 read phase (rep 50); "
              "\"difference between the classes is the weights of the "
              "phases\".\n");
  return 0;
}
