// Figure 4: the first I/O phases of the example application.
//
// Paper: Phase 1 = the 4 processes' first write (offset 0, ~tick 148,
// weight 40MB); Phase 2 = the second write at offset 265302, ~122 ticks
// later.  The 40 reads at the end form one phase (41).
#include <cstdio>

#include "common.hpp"
#include "core/phase.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;
  bench::banner("Figure 4", "I/O phases of the example application");

  auto run = bench::traceOn(
      configs::ConfigId::A, "example",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeStridedExample(bench::paperExample(cfg.mount));
      },
      4);

  const auto& phases = run.model.phases();
  std::printf("detected %zu phases (paper: 40 write phases + 1 read phase)\n\n",
              phases.size());
  for (std::size_t i = 0; i < phases.size() && i < 2; ++i) {
    const auto& p = phases[i];
    std::printf("Phase %d\n", p.id);
    std::printf("  IdP IdF MPI-Operation          Offset   tick  RequestSize\n");
    for (std::size_t r = 0; r < p.ranks.size(); ++r) {
      std::printf("  %3d %3d %-22s %8llu %6llu %12llu\n", p.ranks[r], p.idF,
                  p.ops[0].op.c_str(),
                  static_cast<unsigned long long>(
                      p.ops[0].initOffsetBytes[r] / 40),  // etype units
                  static_cast<unsigned long long>(p.firstTick),
                  static_cast<unsigned long long>(p.ops[0].rsBytes));
    }
    std::printf("  weight = %s\n\n",
                util::formatBytesApprox(p.weightBytes).c_str());
  }
  const auto& last = phases.back();
  std::printf("Phase %d: %llu read repetitions, weight %s "
              "(paper: one reading phase, \"a vertical blue line\")\n",
              last.id, static_cast<unsigned long long>(last.rep),
              util::formatBytesApprox(last.weightBytes).c_str());
  return 0;
}
