// Table X: I/O system utilization of MADbench2 on configuration B
// (PVFS2 over 3 JBOD I/O nodes).  The paper reports ~30% usage w.r.t. the
// ideal BW_PK (eq. 4 sums the 3 nodes' device peaks) while the device
// monitor shows the disks near 100% busy — BW_PK assumes ideal parallel
// devices, but the strided PVFS2 traffic keeps the disks seeking.
#include <cstdio>

#include "analysis/evaluate.hpp"
#include "analysis/peaks.hpp"
#include "common.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;
  bench::banner("Table X",
                "System usage of MADbench2 on configuration B");

  auto run = bench::traceOn(
      configs::ConfigId::B, "madbench2",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeMadbench(bench::paperMadbench(cfg.mount));
      },
      16);

  auto peakCfg = configs::makeConfig(configs::ConfigId::B);
  auto peaks = analysis::measurePeaks(peakCfg);
  std::printf("BW_PK (eq. 4, sum over the 3 I/O nodes): write %s MB/s, "
              "read %s MB/s\n\n",
              bench::fmtMiBs(peaks.writePeak).c_str(),
              bench::fmtMiBs(peaks.readPeak).c_str());

  auto rows = analysis::systemUsage(run.model, peaks.writePeak,
                                    peaks.readPeak);
  util::Table table(
      "MADbench2, 16 processes, 4GB file, SHARED, configuration B");
  table.setHeader({"Phase", "#Oper.", "weight", "BW_PK (MB/s)",
                   "BW_MD (MB/s)", "SystemUsage"},
                  {util::Align::Left, util::Align::Left, util::Align::Right,
                   util::Align::Right, util::Align::Right,
                   util::Align::Right});
  for (const auto& row : rows) {
    table.addRow({std::to_string(row.phaseId), row.opsLabel,
                  util::formatBytes(row.weightBytes),
                  bench::fmtMiBs(row.peakBandwidth),
                  bench::fmtMiBs(row.measuredBandwidth),
                  bench::fmtPct(row.usagePct)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Paper reference: \"MADBench2 uses about 30%% of the I/O "
              "subsystem capacity with respect to BW_PK\" on this "
              "configuration, while the disks run near 100%% busy "
              "(see fig08_device_monitor).\n");
  return 0;
}
