// Table VIII + Figure 7: the I/O model of MADbench2 for 16 processes,
// 8KPIX, shared filetype, 32 MB request size.
//
// Paper's phases:
//   1: 16 write, idP*8*32MB,          rep 8, weight 4GB
//   2: 16 read,  idP*8*32MB,          rep 2, weight 1GB
//   3: 16 write, idP*8*32MB, rep 6, 3GB  +  16 read, idP*8*32MB+2*32MB, 3GB
//   4: 16 write, idP*8*32MB - 2*32MB (anchored at the pipeline tail;
//      equivalently +6*32MB from the region base), rep 2, weight 1GB
//   5: 16 read,  idP*8*32MB,          rep 8, weight 4GB
#include <cstdio>

#include "common.hpp"
#include "core/phase.hpp"

int main() {
  using namespace iop;
  bench::banner("Table VIII / Figure 7",
                "I/O phases of MADbench2, 16 processes, 8KPIX, SHARED");

  auto run = bench::traceOn(
      configs::ConfigId::A, "madbench2",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeMadbench(bench::paperMadbench(cfg.mount));
      },
      16);

  std::printf("%s\n", run.model.renderSummary().c_str());
  std::printf("Figure 7 series (one point per rank/op/rep — first 16):\n%s...\n",
              run.model.renderGlobalPatternSeries(16).c_str());
  std::printf(
      "\nPaper reference: 5 phases, reps 8/2/(6+6)/2/8, weights "
      "4GB/1GB/(3GB+3GB)/1GB/4GB, initOffset idP*8*32MB (+2*32MB for the\n"
      "pipelined reads; the paper anchors the tail writes as -2*32MB, this\n"
      "model anchors them as +6*32MB from the region base — same offsets).\n");
  return 0;
}
