// Figure 5: the I/O abstract model of the example application — metadata,
// spatial/temporal pattern, and the 3-D global-access-pattern series
// (tick, process, file offset).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace iop;
  bench::banner("Figure 5", "I/O abstract model for 4 processes");

  auto run = bench::traceOn(
      configs::ConfigId::A, "example",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeStridedExample(bench::paperExample(cfg.mount));
      },
      4);

  std::printf("%s\n", run.model.renderSummary().c_str());
  std::printf("global access pattern series (first 24 points; plot tick vs\n"
              "fileOffset per process for the paper's 3-D view):\n%s",
              run.model.renderGlobalPatternSeries(24).c_str());
  std::printf("...\n\nPaper reference: strided access mode (via "
              "MPI_File_set_view), 40 red write dots per process followed "
              "by one vertical blue read phase.\n");
  return 0;
}
