// Figure 6: the I/O model of the IOR benchmark itself — one writing phase
// and one reading phase in the global access pattern.
#include <cstdio>

#include "common.hpp"
#include "core/iomodel.hpp"
#include "ior/ior.hpp"
#include "trace/tracer.hpp"
#include "util/units.hpp"

int main() {
  using namespace iop;
  using iop::util::MiB;
  bench::banner("Figure 6", "I/O model of IOR (traced as an application)");

  auto cfg = configs::makeConfig(configs::ConfigId::A);
  ior::IorParams p;
  p.mount = cfg.mount;
  p.np = 4;
  p.blockSize = 64 * MiB;
  p.transferSize = 4 * MiB;
  trace::Tracer tracer("ior", p.np);
  ior::runIor(cfg, p, &tracer);

  auto model = core::extractModel(tracer.data());
  std::printf("%s\n", model.renderSummary().c_str());
  std::printf("Paper reference: one writing phase and one reading phase "
              "identified in IOR's global access pattern.\n");
  std::printf("Reproduced: %zu phases (%s, %s).\n", model.phases().size(),
              model.phases().front().opTypeLabel().c_str(),
              model.phases().back().opTypeLabel().c_str());
  return 0;
}
