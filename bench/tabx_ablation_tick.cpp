// Ablation: the tick-adjacency rule in phase detection (DESIGN.md §5).
//
// BT-IO's 40 dumps have solver communication between them; with the rule
// enabled (max intra-phase tick gap = 1) each dump is its own phase, as
// the paper's Table XI requires.  Disabling the rule (huge gap allowance)
// collapses the 40 write phases into one, losing the temporal structure
// that lets the evaluation place I/O in application time.
#include <cstdio>

#include "common.hpp"
#include "core/phase.hpp"
#include "util/table.hpp"

int main() {
  using namespace iop;
  bench::banner("Ablation", "Tick-adjacency rule in phase detection");

  auto run = bench::traceOn(
      configs::ConfigId::A, "btio-C",
      [](const configs::ClusterConfig& cfg) {
        return apps::makeBtio(bench::paperBtio(cfg.mount, apps::BtClass::C));
      },
      16);

  util::Table table("NAS BT-IO class C, 16 processes");
  table.setHeader({"maxIntraPhaseTickGap", "phases", "write phases",
                   "read phases"},
                  {util::Align::Right, util::Align::Right,
                   util::Align::Right, util::Align::Right});
  for (std::uint64_t gap : {1ull, 5ull, 50ull, 1000000ull}) {
    core::PhaseDetectionOptions opt;
    opt.maxIntraPhaseTickGap = gap;
    auto phases = core::detectPhases(run.trace, opt);
    int writes = 0, reads = 0;
    for (const auto& p : phases) {
      if (p.opTypeLabel() == "W") ++writes;
      if (p.opTypeLabel() == "R") ++reads;
    }
    table.addRow({std::to_string(gap), std::to_string(phases.size()),
                  std::to_string(writes), std::to_string(reads)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Expected: gap=1 gives the paper's 40+1 structure; a huge "
              "gap collapses the dumps into 1+1.\n");
  return 0;
}
