// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Each binary regenerates one table or figure from the paper (see
// DESIGN.md's experiment index) and prints the simulated result next to
// the paper's reported values where the paper gives them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/runner.hpp"
#include "apps/btio.hpp"
#include "apps/madbench.hpp"
#include "apps/strided_example.hpp"
#include "configs/configs.hpp"

namespace iop::bench {

/// Print a standard experiment banner.
void banner(const std::string& experimentId, const std::string& title);

/// Paper's MADbench2 setup: 16 processes, 8KPIX, shared filetype, 32 MB
/// request size (Section IV-A).
apps::MadbenchParams paperMadbench(const std::string& mount);

/// Paper's BT-IO setup for a class (Section IV-B).
apps::BtioParams paperBtio(const std::string& mount, apps::BtClass cls);

/// Paper's Figures 2-5 example application (4 processes).
apps::StridedExampleParams paperExample(const std::string& mount);

/// Run + trace an app on a fresh instance of a configuration.
analysis::AppRun traceOn(configs::ConfigId id, const std::string& appName,
                         const std::function<mpi::Runtime::RankMain(
                             const configs::ClusterConfig&)>& makeMain,
                         int np);

/// Format seconds / MB/s with the paper's comma-free style.
std::string fmtSec(double seconds);
std::string fmtMiBs(double bytesPerSecond);
std::string fmtPct(double pct);

/// One machine-readable benchmark result (docs/OBSERVABILITY.md, "Bench
/// JSON").  A zero means the dimension was not measured.
struct BenchRecord {
  std::string name;
  std::int64_t iterations = 0;
  double nsPerOp = 0;
  double bytesPerSecond = 0;
};

/// Write records as a `{"schema":"iop-bench/1","results":[...]}` document.
void writeBenchJson(const std::string& path,
                    const std::vector<BenchRecord>& records);

}  // namespace iop::bench
